// Package coord is the fault-tolerant campaign service: a lease-based
// coordinator that decomposes a resolved campaign into (sampler, variant,
// instance-range) shards, leases them to worker processes over plain
// HTTP+JSON, re-leases expired shards, and merges the completed shard
// files into the one canonical deterministic record stream — the exact
// bytes a single-process campaign.Run would have written. Robustness is
// the design center: every shard is idempotent (records are keyed by
// (sampler, variant, instance), never by scheduling, so a re-executed
// lease produces byte-identical JSONL), every durable write is atomic or
// append-fsync with truncated-tail recovery, and the whole protocol is
// exercised under seeded fault injection (internal/faultinject) that
// proves the merged stream survives crashes, torn writes, dropped
// heartbeats, stalls and duplicate leases.
package coord

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"ncg/internal/campaign"
	"ncg/internal/faultinject"
	"ncg/internal/jsonl"
)

// Config shapes a coordinator.
type Config struct {
	// Campaign is the hunt to serve. Open resolves it (campaign.Resolve
	// with zero options), so pass the same campaign value workers are
	// started with; the fingerprint handshake rejects any drift.
	Campaign campaign.Campaign
	// Dir is the coordinator's state directory: manifest.jsonl (the
	// write-ahead log of shard completions), shards/ (one atomic file per
	// completed shard) and records.jsonl (the merged canonical stream).
	// A coordinator restarted on the same directory resumes exactly
	// where the manifest says it was.
	Dir string
	// ShardSize is the instance count per shard (0: 64). A resume must
	// use the original size; the manifest header pins it.
	ShardSize int
	// LeaseTTL is the heartbeat-renewed lease expiry (0: 30s).
	LeaseTTL time.Duration
	// MaxStreamClients is the admission-control cap on concurrent
	// /v1/stream clients (0: 64). Requests past the cap are refused with
	// 503 + Retry-After instead of degrading every connected client.
	MaxStreamClients int
	// StreamChunkBytes bounds the bytes a single stream response (or SSE
	// burst) carries (0: 256 KiB). Streaming serves the committed prefix
	// directly from the durable shard files in chunks of at most this
	// size, so a client costs the coordinator O(chunk) memory no matter
	// how far behind it is.
	StreamChunkBytes int
	// StreamWriteTimeout is the slow-client eviction deadline: a stream
	// client that cannot absorb one chunk within it is disconnected
	// (0: 5s). A stalled reader therefore costs O(1) memory for at most
	// this long and never delays shard completion or the merge.
	StreamWriteTimeout time.Duration
	// StreamPollMax caps a long-poll request's ?wait parameter (0: 30s).
	StreamPollMax time.Duration
	// RetryAfter is the hint sent with admission-control 503s (0: 1s).
	RetryAfter time.Duration
	// Now is the coordinator clock (nil: time.Now), injectable in tests.
	Now func() time.Time
	// Injector fires the seeded fault schedule of chaos runs (nil: no
	// faults).
	Injector *faultinject.Injector
	// Logf, if non-nil, receives one line per lease-protocol event.
	Logf func(format string, args ...any)
}

// shardStatus is the lifecycle of one planned shard.
type shardStatus int

const (
	shardPending shardStatus = iota
	shardLeased
	shardDone
)

// lease is one live grant of a shard to a worker.
type lease struct {
	id     string
	index  int
	worker string
	expiry time.Time
}

// shardState is the coordinator's view of one planned shard.
type shardState struct {
	status  shardStatus
	bytes   int64
	sum     string
	records int
	hits    int
}

// Status is the coordinator's public progress snapshot, served at
// /v1/status.
type Status struct {
	Campaign    string `json:"campaign"`
	Fingerprint string `json:"fingerprint"`
	Shards      int    `json:"shards"`
	Pending     int    `json:"pending"`
	Leased      int    `json:"leased"`
	Done        int    `json:"done"`
	Records     int    `json:"records"`
	Hits        int    `json:"hits"`
	Merged      bool   `json:"merged"`
	// Autoscaling hints: QueueDepth is the ungranted shard backlog,
	// ActiveWorkers counts distinct workers holding live leases, and
	// WantWorkers is the shards runnable right now (pending + leased) —
	// the worker count at which the queue drains without idle pollers.
	QueueDepth    int `json:"queueDepth"`
	ActiveWorkers int `json:"activeWorkers"`
	WantWorkers   int `json:"wantWorkers"`
	// Stream observability: connected /v1/stream clients, the byte
	// length of the committed record prefix they can read, and slow
	// clients evicted so far.
	StreamClients int   `json:"streamClients"`
	StreamBytes   int64 `json:"streamBytes"`
	StreamEvicted int   `json:"streamEvicted"`
	StreamRefused int   `json:"streamRefused"`
}

// Coordinator serves one campaign's shard lease protocol and owns the
// durable run state under Config.Dir.
type Coordinator struct {
	cfg   Config
	camp  campaign.Campaign
	fp    string
	fpSum string // short fingerprint hash; the campaign id inside resume cursors
	plan  []campaign.ShardRef

	mu      sync.Mutex
	man     *manifest
	states  []shardState
	leases  map[string]*lease
	nextID  int64
	merged  bool
	crashed bool

	// Streaming state: the connected-client gauge (admission control),
	// eviction/refusal counters, and the commit broadcast channel —
	// closed and replaced whenever the committed prefix grows, so
	// long-poll waiters wake without the coordinator ever buffering
	// per-client data.
	streams       int
	streamEvicted int
	streamRefused int
	commitCh      chan struct{}

	crashCh chan struct{}
	doneCh  chan struct{}
}

// Open creates or resumes a coordinator on cfg.Dir: it replays the
// manifest (truncating a torn tail), verifies every recorded shard file
// against its length and checksum — a shard whose file was lost or
// damaged simply becomes pending again — and, if the plan is already
// complete, merges. Crash-safety contract: the manifest commits a shard
// only after its file is durable, so recovery never trusts a file the
// log does not vouch for, and vice versa a logged-but-damaged file is
// re-run, never merged.
func Open(cfg Config) (*Coordinator, error) {
	camp, err := campaign.Resolve(cfg.Campaign, campaign.Options{})
	if err != nil {
		return nil, err
	}
	if cfg.ShardSize <= 0 {
		cfg.ShardSize = 64
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.MaxStreamClients <= 0 {
		cfg.MaxStreamClients = 64
	}
	if cfg.StreamChunkBytes <= 0 {
		cfg.StreamChunkBytes = 256 << 10
	}
	if cfg.StreamWriteTimeout <= 0 {
		cfg.StreamWriteTimeout = 5 * time.Second
	}
	if cfg.StreamPollMax <= 0 {
		cfg.StreamPollMax = 30 * time.Second
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	plan, err := campaign.Plan(camp, cfg.ShardSize)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Join(cfg.Dir, "shards"), 0o755); err != nil {
		return nil, err
	}
	man, entries, err := openManifest(filepath.Join(cfg.Dir, "manifest.jsonl"))
	if err != nil {
		return nil, err
	}
	fp := campaign.Fingerprint(camp)
	c := &Coordinator{
		cfg:      cfg,
		camp:     camp,
		fp:       fp,
		fpSum:    checksum([]byte(fp)),
		plan:     plan,
		man:      man,
		states:   make([]shardState, len(plan)),
		leases:   make(map[string]*lease),
		commitCh: make(chan struct{}),
		crashCh:  make(chan struct{}),
		doneCh:   make(chan struct{}),
	}
	if err := c.recover(entries); err != nil {
		man.close()
		return nil, err
	}
	return c, nil
}

// recover replays the manifest entries into run state.
func (c *Coordinator) recover(entries []manifestEntry) error {
	seenHeader := false
	mergedLogged := false
	for _, e := range entries {
		switch e.Type {
		case "campaign":
			if e.Fingerprint != c.fp {
				return fmt.Errorf("coord: %s holds a different campaign:\n  dir: %s\n  run: %s", c.cfg.Dir, e.Fingerprint, c.fp)
			}
			if e.ShardSize != c.cfg.ShardSize || e.Shards != len(c.plan) {
				return fmt.Errorf("coord: %s was planned with shard size %d (%d shards), not %d (%d); resume with the original plan",
					c.cfg.Dir, e.ShardSize, e.Shards, c.cfg.ShardSize, len(c.plan))
			}
			seenHeader = true
		case "shard":
			if !seenHeader {
				return fmt.Errorf("coord: %s manifest has a shard entry before the campaign header", c.cfg.Dir)
			}
			if e.Index < 0 || e.Index >= len(c.plan) || c.plan[e.Index] != e.Shard {
				return fmt.Errorf("coord: manifest shard entry %d (%s) does not match the plan", e.Index, e.Shard)
			}
			// Trust the entry only if the file still matches; a lost or
			// damaged file re-runs its shard (idempotent, so harmless).
			data, err := os.ReadFile(filepath.Join(c.cfg.Dir, e.File))
			if err != nil || int64(len(data)) != e.Bytes || checksum(data) != e.Sum {
				c.cfg.Logf("coord: shard %d file %s missing or damaged; re-running", e.Index, e.File)
				c.states[e.Index] = shardState{status: shardPending}
				continue
			}
			c.states[e.Index] = shardState{
				status: shardDone, bytes: e.Bytes, sum: e.Sum,
				records: e.Records, hits: e.Hits,
			}
		case "merged":
			mergedLogged = true
		}
	}
	if !seenHeader {
		if err := c.man.append(manifestEntry{
			Type: "campaign", Fingerprint: c.fp,
			ShardSize: c.cfg.ShardSize, Shards: len(c.plan),
		}); err != nil {
			return err
		}
	}
	// A merged entry is only honored if every shard is still verified
	// done and the result file matches the concatenation; otherwise the
	// merge (atomic, idempotent) simply runs again when the last shard
	// lands.
	if mergedLogged && c.doneCount() == len(c.plan) {
		c.merged = true
		close(c.doneCh)
		return nil
	}
	if c.doneCount() == len(c.plan) {
		return c.mergeLocked()
	}
	return nil
}

// doneCount counts completed shards. Callers hold mu or are in Open.
func (c *Coordinator) doneCount() int {
	done := 0
	for _, st := range c.states {
		if st.status == shardDone {
			done++
		}
	}
	return done
}

// ResultPath is the merged canonical record stream's location.
func (c *Coordinator) ResultPath() string {
	return filepath.Join(c.cfg.Dir, "records.jsonl")
}

// Done is closed once the campaign is complete and merged.
func (c *Coordinator) Done() <-chan struct{} { return c.doneCh }

// Crashed is closed when an injected fault killed the coordinator; the
// chaos harness restarts it with Open on the same directory.
func (c *Coordinator) Crashed() <-chan struct{} { return c.crashCh }

// Close releases the manifest handle. The directory remains resumable.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.man.close()
}

// crash simulates process death: all subsequent requests fail with 503
// and Crashed fires. Callers hold mu.
func (c *Coordinator) crash(site string) {
	if !c.crashed {
		c.cfg.Logf("coord: injected crash at %s", site)
		c.crashed = true
		c.man.close()
		close(c.crashCh)
		// Wake long-poll stream waiters so they observe the crash (503)
		// now instead of sleeping out their poll window against a corpse.
		c.notifyCommit()
	}
}

// reap expires overdue leases; a leased shard with no live lease left
// returns to pending. Callers hold mu.
func (c *Coordinator) reap(now time.Time) {
	for id, l := range c.leases {
		if now.After(l.expiry) {
			c.cfg.Logf("coord: lease %s (%s, worker %s) expired", id, c.plan[l.index], l.worker)
			delete(c.leases, id)
		}
	}
	live := make(map[int]bool, len(c.leases))
	for _, l := range c.leases {
		live[l.index] = true
	}
	for i := range c.states {
		if c.states[i].status == shardLeased && !live[i] {
			c.states[i].status = shardPending
		}
	}
}

// grant creates a lease on shard index for worker. Callers hold mu.
func (c *Coordinator) grant(index int, worker string, now time.Time) *lease {
	c.nextID++
	l := &lease{
		id:     fmt.Sprintf("lease-%d", c.nextID),
		index:  index,
		worker: worker,
		expiry: now.Add(c.cfg.LeaseTTL),
	}
	c.leases[l.id] = l
	c.states[index].status = shardLeased
	c.cfg.Logf("coord: leased %s to %s as %s", c.plan[index], worker, l.id)
	return l
}

// mergeLocked concatenates the shard files in plan order into the
// canonical result stream, atomically, and logs the merge. Callers hold
// mu (or are in Open's single-threaded recovery).
func (c *Coordinator) mergeLocked() error {
	var out []byte
	for i := range c.plan {
		data, err := os.ReadFile(filepath.Join(c.cfg.Dir, shardFileName(i)))
		if err != nil {
			return fmt.Errorf("coord: merge: %v", err)
		}
		if checksum(data) != c.states[i].sum {
			return fmt.Errorf("coord: merge: shard %d file no longer matches its manifest checksum", i)
		}
		out = append(out, data...)
	}
	if err := jsonl.AtomicWriteFile(c.ResultPath(), out, 0o644); err != nil {
		return err
	}
	if err := c.man.append(manifestEntry{
		Type: "merged", File: filepath.Base(c.ResultPath()),
		Bytes: int64(len(out)), Sum: checksum(out),
	}); err != nil {
		return err
	}
	c.merged = true
	c.cfg.Logf("coord: merged %d shards into %s (%d bytes)", len(c.plan), c.ResultPath(), len(out))
	close(c.doneCh)
	c.notifyCommit()
	return nil
}

// notifyCommit wakes every long-poll stream waiter: the committed record
// prefix just grew (a shard in the prefix landed, or the merge finished).
// The channel swap is the whole broadcast — waiters hold only the old
// channel, so a stalled or dead client costs nothing here. Callers hold
// mu.
func (c *Coordinator) notifyCommit() {
	close(c.commitCh)
	c.commitCh = make(chan struct{})
}

// prefixLocked returns the byte length of the committed record prefix:
// the concatenation of done-shard files in plan order up to the first
// incomplete shard. Within one coordinator incarnation this only grows
// (shards in the prefix never revert), and its bytes are deterministic,
// so it is always a byte-prefix of the final canonical records.jsonl.
// Callers hold mu.
func (c *Coordinator) prefixLocked() int64 {
	var n int64
	for i := range c.states {
		if c.states[i].status != shardDone {
			return n
		}
		n += c.states[i].bytes
	}
	return n
}

// status snapshots progress. Callers hold mu.
func (c *Coordinator) statusLocked() Status {
	st := Status{
		Campaign:      c.camp.Name,
		Fingerprint:   c.fp,
		Shards:        len(c.plan),
		Merged:        c.merged,
		StreamClients: c.streams,
		StreamBytes:   c.prefixLocked(),
		StreamEvicted: c.streamEvicted,
		StreamRefused: c.streamRefused,
	}
	workers := make(map[string]bool, len(c.leases))
	for _, l := range c.leases {
		workers[l.worker] = true
	}
	st.ActiveWorkers = len(workers)
	for _, s := range c.states {
		switch s.status {
		case shardPending:
			st.Pending++
		case shardLeased:
			st.Leased++
		case shardDone:
			st.Done++
			st.Records += s.records
			st.Hits += s.hits
		}
	}
	st.QueueDepth = st.Pending
	st.WantWorkers = st.Pending + st.Leased
	return st
}

// Status snapshots the coordinator's progress.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reap(c.cfg.Now())
	return c.statusLocked()
}
