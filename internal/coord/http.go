package coord

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"

	"ncg/internal/campaign"
	"ncg/internal/faultinject"
	"ncg/internal/jsonl"
)

// The wire types of the lease protocol (plain JSON over POST).

// LeaseRequest asks for a shard. Fingerprint must match the
// coordinator's resolved campaign exactly.
type LeaseRequest struct {
	Worker      string `json:"worker"`
	Fingerprint string `json:"fingerprint"`
}

// LeaseResponse grants a shard, asks the worker to wait, or reports the
// campaign complete.
type LeaseResponse struct {
	// Done: the campaign is complete and merged; the worker should exit.
	Done bool `json:"done"`
	// Wait: nothing is grantable right now (all remaining shards are
	// leased); retry after WaitMs.
	Wait   bool  `json:"wait"`
	WaitMs int64 `json:"waitMs"`
	// A granted lease: renew it with heartbeats every TTLMs/3.
	Lease string            `json:"lease"`
	Index int               `json:"index"`
	Shard campaign.ShardRef `json:"shard"`
	TTLMs int64             `json:"ttlMs"`
}

// HeartbeatRequest renews a lease.
type HeartbeatRequest struct {
	Lease string `json:"lease"`
}

// HeartbeatResponse reports whether the lease is still live. A false OK
// means the lease expired (and its shard may already be re-leased); the
// worker may still finish and upload — completion is idempotent.
type HeartbeatResponse struct {
	OK    bool  `json:"ok"`
	TTLMs int64 `json:"ttlMs"`
}

// CompleteRequest uploads a finished shard's records as JSONL text —
// byte-for-byte the lines a single-process run would write for those
// instances.
type CompleteRequest struct {
	Lease   string `json:"lease"`
	Worker  string `json:"worker"`
	Index   int    `json:"index"`
	Records string `json:"records"`
}

// CompleteResponse acknowledges a completed shard.
type CompleteResponse struct {
	OK bool `json:"ok"`
	// Done: this was the last shard; the merged stream is on disk.
	Done bool `json:"done"`
}

// ReleaseRequest gives a lease back (graceful worker drain).
type ReleaseRequest struct {
	Lease string `json:"lease"`
}

// Handler serves the coordinator's API:
//
//	POST /v1/lease      LeaseRequest   -> LeaseResponse
//	POST /v1/heartbeat  HeartbeatRequest -> HeartbeatResponse
//	POST /v1/complete   CompleteRequest -> CompleteResponse
//	POST /v1/release    ReleaseRequest -> {}
//	GET  /v1/status     -> Status
//	GET  /v1/records    -> JSONL dump of the committed record prefix
//	                       (the merged stream once complete), one shot
//	GET  /v1/stream     -> the live result stream: cursor-resumable
//	                       long-poll or SSE over the committed prefix,
//	                       with bounded chunks, slow-client eviction and
//	                       admission control (see stream.go)
//
// Multi-campaign deployments mount these under /c/{name}/ via Registry;
// the flat routes serve the single-campaign form.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/lease", c.handleLease)
	mux.HandleFunc("POST /v1/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /v1/complete", c.handleComplete)
	mux.HandleFunc("POST /v1/release", c.handleRelease)
	mux.HandleFunc("GET /v1/status", c.handleStatus)
	mux.HandleFunc("GET /v1/records", c.handleRecords)
	mux.HandleFunc("GET /v1/stream", c.handleStream)
	return mux
}

// decode parses a JSON request body, bounding it defensively.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err == nil {
		err = json.Unmarshal(body, v)
	}
	if err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

// reply writes a JSON response.
func reply(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// gone reports a simulated-crash coordinator: every request fails until
// the process is restarted on the same directory. The Retry-After hint
// paces worker and watch retry loops through the restart window.
func (c *Coordinator) gone(w http.ResponseWriter) bool {
	if c.crashed {
		w.Header().Set("Retry-After", retryAfterSeconds(c.cfg.RetryAfter))
		http.Error(w, "coordinator crashed", http.StatusServiceUnavailable)
		return true
	}
	return false
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decode(w, r, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gone(w) {
		return
	}
	if req.Fingerprint != c.fp {
		http.Error(w, fmt.Sprintf("campaign fingerprint mismatch:\n  coordinator: %s\n  worker:      %s", c.fp, req.Fingerprint),
			http.StatusConflict)
		return
	}
	now := c.cfg.Now()
	c.reap(now)
	if c.merged {
		reply(w, LeaseResponse{Done: true})
		return
	}
	// A duplicate-grant fault hands out a shard that is already leased:
	// two workers race the same instance range, and completion must stay
	// idempotent because both produce identical bytes.
	if c.cfg.Injector.Fire(faultinject.LeaseGrant) == faultinject.Duplicate {
		for i := range c.states {
			if c.states[i].status == shardLeased {
				l := c.grant(i, req.Worker, now)
				c.cfg.Logf("coord: injected duplicate grant of %s", c.plan[i])
				reply(w, LeaseResponse{Lease: l.id, Index: i, Shard: c.plan[i], TTLMs: c.cfg.LeaseTTL.Milliseconds()})
				return
			}
		}
	}
	for i := range c.states {
		if c.states[i].status == shardPending {
			l := c.grant(i, req.Worker, now)
			reply(w, LeaseResponse{Lease: l.id, Index: i, Shard: c.plan[i], TTLMs: c.cfg.LeaseTTL.Milliseconds()})
			return
		}
	}
	// Nothing pending: either everything is done (merge may still be
	// in flight on another request) or the stragglers are leased out.
	reply(w, LeaseResponse{Wait: true, WaitMs: (c.cfg.LeaseTTL / 4).Milliseconds()})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decode(w, r, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gone(w) {
		return
	}
	now := c.cfg.Now()
	c.reap(now)
	l, ok := c.leases[req.Lease]
	if !ok {
		reply(w, HeartbeatResponse{OK: false})
		return
	}
	l.expiry = now.Add(c.cfg.LeaseTTL)
	reply(w, HeartbeatResponse{OK: true, TTLMs: c.cfg.LeaseTTL.Milliseconds()})
}

func (c *Coordinator) handleRelease(w http.ResponseWriter, r *http.Request) {
	var req ReleaseRequest
	if !decode(w, r, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gone(w) {
		return
	}
	if l, ok := c.leases[req.Lease]; ok {
		delete(c.leases, req.Lease)
		c.cfg.Logf("coord: lease %s released (%s)", l.id, c.plan[l.index])
	}
	c.reap(c.cfg.Now())
	reply(w, struct{}{})
}

// handleComplete persists a finished shard. The durability order is the
// crash-safety invariant: (1) shard file written atomically, (2) manifest
// entry appended with fsync, (3) in-memory state marked done. A crash
// between (1) and (2) leaves an orphan file recovery ignores and re-runs;
// a crash inside (2) leaves a torn manifest tail recovery truncates. A
// complete for an already-done shard verifies the bytes match and
// acknowledges — re-executed leases are idempotent, never an error. A
// complete whose lease expired (or was never granted, after a coordinator
// restart) is accepted the same way: the records are deterministic, so
// the upload's validity does not depend on who holds the lease.
func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !decode(w, r, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gone(w) {
		return
	}
	if req.Index < 0 || req.Index >= len(c.plan) {
		http.Error(w, fmt.Sprintf("shard index %d outside the plan", req.Index), http.StatusBadRequest)
		return
	}
	ref := c.plan[req.Index]
	data := []byte(req.Records)
	if c.states[req.Index].status == shardDone {
		if checksum(data) != c.states[req.Index].sum {
			// Deterministic shards cannot legitimately diverge; a mismatch
			// means misconfigured workers and must surface loudly.
			http.Error(w, fmt.Sprintf("shard %s re-upload differs from the committed file", ref), http.StatusConflict)
			return
		}
		reply(w, CompleteResponse{OK: true, Done: c.merged})
		return
	}
	recs, err := campaign.UnmarshalRecords(data)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := c.validateShard(ref, recs); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	hits := 0
	for _, rec := range recs {
		if rec.Hit {
			hits++
		}
	}
	switch c.cfg.Injector.Fire(faultinject.ShardWrite) {
	case faultinject.Crash:
		c.crash("shard-write")
		c.gone(w)
		return
	}
	if err := jsonl.AtomicWriteFile(filepath.Join(c.cfg.Dir, shardFileName(req.Index)), data, 0o644); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	entry := manifestEntry{
		Type: "shard", Index: req.Index, Shard: ref,
		File: shardFileName(req.Index), Bytes: int64(len(data)), Sum: checksum(data),
		Records: len(recs), Hits: hits,
	}
	switch c.cfg.Injector.Fire(faultinject.ManifestAppend) {
	case faultinject.Crash:
		c.crash("manifest-append")
		c.gone(w)
		return
	case faultinject.Torn:
		c.man.appendTorn(entry)
		c.crash("manifest-append-torn")
		c.gone(w)
		return
	}
	if err := c.man.append(entry); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	c.states[req.Index] = shardState{
		status: shardDone, bytes: int64(len(data)), sum: entry.Sum,
		records: len(recs), hits: hits,
	}
	// Wake stream waiters: if this shard extended the committed prefix,
	// long-polls past the old prefix can now be served. (Spurious wakes —
	// a shard landing behind an earlier gap — just re-check and re-wait.)
	c.notifyCommit()
	for id, l := range c.leases {
		if l.index == req.Index {
			delete(c.leases, id)
		}
	}
	c.cfg.Logf("coord: shard %d (%s) completed by %s: %d records, %d hits", req.Index, ref, req.Worker, len(recs), hits)
	if c.doneCount() == len(c.plan) && !c.merged {
		if err := c.mergeLocked(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	reply(w, CompleteResponse{OK: true, Done: c.merged})
}

// validateShard is the upload integrity gate: the records must cover
// exactly the shard's instance range, in order, from this campaign's seed
// streams. It keeps a confused or stale worker from ever contaminating
// the canonical stream.
func (c *Coordinator) validateShard(ref campaign.ShardRef, recs []campaign.Record) error {
	if len(recs) != ref.Hi-ref.Lo {
		return fmt.Errorf("shard %s upload has %d records, want %d", ref, len(recs), ref.Hi-ref.Lo)
	}
	for i, rec := range recs {
		if rec.Campaign != c.camp.Name || rec.Sampler != ref.Sampler || rec.Variant != ref.Variant || rec.Instance != ref.Lo+i {
			return fmt.Errorf("shard %s upload record %d is %s/%s/%s #%d, not this shard's instance %d",
				ref, i, rec.Campaign, rec.Sampler, rec.Variant, rec.Instance, ref.Lo+i)
		}
	}
	return nil
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gone(w) {
		return
	}
	c.reap(c.cfg.Now())
	reply(w, c.statusLocked())
}

// handleRecords streams the canonical record prefix: the concatenation of
// completed shard files up to the first incomplete shard — exactly a
// prefix of the final merged stream, so a client can tail a hunt live and
// later reads only ever extend what it saw.
func (c *Coordinator) handleRecords(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	if c.gone(w) {
		c.mu.Unlock()
		return
	}
	var files []string
	complete := true
	for i := range c.plan {
		if c.states[i].status != shardDone {
			complete = false
			break
		}
		files = append(files, filepath.Join(c.cfg.Dir, shardFileName(i)))
	}
	c.mu.Unlock()
	w.Header().Set("Content-Type", "application/jsonl")
	w.Header().Set("X-Ncg-Complete", fmt.Sprintf("%v", complete))
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return
		}
		_, err = io.Copy(w, f)
		f.Close()
		if err != nil {
			return
		}
	}
}
