package coord

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ncg/internal/faultinject"
)

// chaosCluster is the in-process chaos harness: a stable HTTP endpoint
// fronting a Registry that hosts the campaign with AutoRestart. When an
// injected fault crashes the coordinator, the registry's supervisor
// serves 503 + Retry-After (exactly as a dead process behind a load
// balancer would look), then reopens a fresh coordinator from the same
// directory — the restart path real deployments take.
type chaosCluster struct {
	t   *testing.T
	reg *Registry
	srv *httptest.Server
}

const chaosCampaignName = "hunt"

func startChaosCluster(t *testing.T, cfg Config) *chaosCluster {
	cl := &chaosCluster{t: t}
	cl.reg = NewRegistry(RegistryConfig{
		AutoRestart: 20 * time.Millisecond,
		RetryAfter:  time.Second,
		Logf:        t.Logf,
	})
	if _, err := cl.reg.Add(chaosCampaignName, cfg); err != nil {
		t.Fatalf("chaos: host campaign: %v", err)
	}
	cl.srv = httptest.NewServer(cl.reg.Handler())
	return cl
}

func (cl *chaosCluster) stop() {
	cl.reg.Close()
	cl.srv.Close()
}

func (cl *chaosCluster) cur() *Coordinator { return cl.reg.Get(chaosCampaignName) }

func (cl *chaosCluster) restarts() int { return cl.reg.Restarts(chaosCampaignName) }

// waitMerged polls until the current coordinator reports the campaign
// merged.
func (cl *chaosCluster) waitMerged(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if c := cl.cur(); c != nil {
			if st := c.Status(); st.Merged {
				return true
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	return false
}

// chaosSeeds returns the fault-schedule seeds to sweep: 1..4 by default,
// extended via NCG_CHAOS_SEEDS (the CI chaos job sweeps more).
func chaosSeeds(t *testing.T) []int64 {
	n := 4
	if s := os.Getenv("NCG_CHAOS_SEEDS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			t.Fatalf("bad NCG_CHAOS_SEEDS %q", s)
		}
		n = v
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return seeds
}

// chaosWatcher follows the live stream through every injected fault —
// its own disconnects and stalls, reconnect storms, and coordinator
// crash/restart cycles — accumulating the bytes it was handed. The
// stream-integrity invariant it certifies: at every moment the
// accumulated bytes are a byte-prefix of the canonical single-process
// stream, and after completion they equal it exactly.
type chaosWatcher struct {
	name  string
	want  []byte
	buf   bytes.Buffer
	stats WatchStats
	err   error
}

func (cw *chaosWatcher) run(ctx context.Context, t *testing.T, url string, inj *faultinject.Injector) {
	cw.stats, cw.err = RunWatch(ctx, WatchConfig{
		URL:  url,
		Name: cw.name,
		OnChunk: func(chunk []byte, cursor string, complete bool) error {
			cw.buf.Write(chunk)
			// The prefix property must hold at every single delivery, not
			// just at the end — a transient reorder would be invisible to
			// a final-bytes-only check if a later chunk overwrote it.
			if got := cw.buf.Bytes(); !bytes.HasPrefix(cw.want, got) {
				return fmt.Errorf("watcher %s: delivered bytes stopped being a canonical prefix at %d bytes (cursor %s)",
					cw.name, len(got), cursor)
			}
			return nil
		},
		Wait:          200 * time.Millisecond,
		ChunkBytes:    700, // small chunks: many boundaries for faults to land on
		RetryBase:     20 * time.Millisecond,
		RetryMax:      250 * time.Millisecond,
		AttemptBudget: 4000,
		Injector:      inj,
		StallFor:      250 * time.Millisecond,
		Logf:          t.Logf,
	})
}

// TestChaosParity is the campaign service's central robustness claim:
// under every seeded fault-injection schedule — worker crashes mid-shard,
// silenced heartbeats forcing lease expiry and re-lease, stalled workers
// completing after their lease was re-granted, duplicate lease grants,
// coordinator crashes before the shard write, before the manifest append,
// mid-append (torn manifest tail) and mid-stream, stream clients
// disconnected mid-chunk, stalled past the eviction deadline and
// reconnect-storming, each crash followed by a supervised restart from
// the manifest — the merged record stream is byte-identical to the
// single-process campaign.Run output, and every cursor-resuming stream
// client observes exactly that stream: no record dropped, duplicated or
// reordered.
func TestChaosParity(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is not -short")
	}
	want := singleProcessBytes(t)
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			sched := faultinject.Seeded(seed, 8, 1, 4)
			inj := faultinject.New(sched)
			cfg := Config{
				Campaign:           testCampaign(),
				Dir:                t.TempDir(),
				ShardSize:          3,
				LeaseTTL:           150 * time.Millisecond,
				StreamWriteTimeout: 150 * time.Millisecond,
				Injector:           inj,
				Logf:               t.Logf,
			}
			cl := startChaosCluster(t, cfg)
			defer cl.stop()

			// Three worker slots; a worker killed by an injected crash is
			// replaced, like a supervisor restarting a dead process.
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var wg sync.WaitGroup
			var crashes atomic.Int32
			var workerErr atomic.Value
			var spawn func(slot, gen int)
			spawn = func(slot, gen int) {
				wg.Add(1)
				go func() {
					defer wg.Done()
					name := fmt.Sprintf("w%d.%d", slot, gen)
					_, err := RunWorker(ctx, WorkerConfig{
						URL:        cl.srv.URL,
						Campaign:   testCampaign(),
						Name:       name,
						Injector:   inj,
						RetryBase:  20 * time.Millisecond,
						RetryMax:   250 * time.Millisecond,
						MaxRetries: 100,
						StallFor:   500 * time.Millisecond,
						Logf:       t.Logf,
					})
					switch {
					case err == nil || errors.Is(err, context.Canceled):
					case errors.Is(err, ErrInjectedCrash):
						if n := crashes.Add(1); n < 24 && ctx.Err() == nil {
							spawn(slot, gen+1)
						}
					default:
						workerErr.Store(fmt.Errorf("worker %s: %w", name, err))
					}
				}()
			}
			for slot := 0; slot < 3; slot++ {
				spawn(slot, 0)
			}

			// Two live stream clients watch the hunt while it runs, eating
			// the stream-side fault schedule (disconnects, stalls,
			// reconnect pulses) plus every coordinator crash.
			watchers := []*chaosWatcher{
				{name: "watch-a", want: want},
				{name: "watch-b", want: want},
			}
			var wwg sync.WaitGroup
			for _, cw := range watchers {
				cw := cw
				wwg.Add(1)
				go func() {
					defer wwg.Done()
					cw.run(ctx, t, cl.srv.URL, inj)
				}()
			}

			if !cl.waitMerged(60 * time.Second) {
				cancel()
				wg.Wait()
				wwg.Wait()
				c := cl.cur()
				var st Status
				if c != nil {
					st = c.Status()
				}
				t.Fatalf("campaign never merged under schedule seed %d; status %+v, fired %v",
					seed, st, inj.Fired())
			}
			// Watchers must drain to the merged end on their own.
			wwg.Wait()
			cancel()
			wg.Wait()
			if err, _ := workerErr.Load().(error); err != nil {
				t.Fatalf("unexpected worker failure: %v", err)
			}

			got, err := os.ReadFile(cl.cur().ResultPath())
			if err != nil {
				t.Fatalf("read merged stream: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("seed %d: merged stream differs from single-process run (%d vs %d bytes); faults fired: %v",
					seed, len(got), len(want), inj.Fired())
			}
			for _, cw := range watchers {
				if cw.err != nil {
					t.Fatalf("seed %d: watcher %s failed: %v (faults %v)", seed, cw.name, cw.err, inj.Fired())
				}
				if !cw.stats.Complete {
					t.Fatalf("seed %d: watcher %s never saw the stream complete (%d bytes)", seed, cw.name, cw.buf.Len())
				}
				if !bytes.Equal(cw.buf.Bytes(), want) {
					t.Fatalf("seed %d: watcher %s observed %d bytes, want the canonical %d — stream integrity broken; faults %v",
						seed, cw.name, cw.buf.Len(), len(want), inj.Fired())
				}
			}
			t.Logf("seed %d: parity held through %d coordinator restarts, %d worker crashes; watchers resumed %d/%d times; faults %v",
				seed, cl.restarts(), crashes.Load(),
				watchers[0].stats.Reconnects+watchers[0].stats.Retries,
				watchers[1].stats.Reconnects+watchers[1].stats.Retries, inj.Fired())
		})
	}
}

// TestChaosInjectorActuallyFires pins that the seeded schedules used by
// the parity sweep are not vacuous: across the default seeds, every fault
// site — the lease-protocol ones and the stream-side ones — fires at
// least once.
func TestChaosInjectorActuallyFires(t *testing.T) {
	fired := map[faultinject.Point]bool{}
	for seed := int64(1); seed <= 16; seed++ {
		for p, m := range faultinject.Seeded(seed, 8, 1, 4) {
			if len(m) > 0 {
				fired[p] = true
			}
		}
	}
	for _, p := range []faultinject.Point{
		faultinject.ShardWrite, faultinject.ManifestAppend, faultinject.LeaseGrant,
		faultinject.Heartbeat, faultinject.WorkerInstance,
		faultinject.StreamChunk, faultinject.StreamClient,
	} {
		if !fired[p] {
			t.Fatalf("no seeded schedule ever fires %s", p)
		}
	}
}
