package coord

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ncg/internal/faultinject"
)

// chaosCluster is the in-process chaos harness: a stable HTTP endpoint
// fronting the current coordinator instance. When an injected fault
// crashes the coordinator, the supervisor drops it (every request fails
// with 503, exactly as a dead process would), then reopens a fresh
// coordinator from the same directory — the restart path real deployments
// take.
type chaosCluster struct {
	t   *testing.T
	cfg Config
	cur atomic.Pointer[Coordinator]
	srv *httptest.Server

	mu       sync.Mutex
	restarts int
	stopped  bool
}

func startChaosCluster(t *testing.T, cfg Config) *chaosCluster {
	cl := &chaosCluster{t: t, cfg: cfg}
	cl.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c := cl.cur.Load()
		if c == nil {
			http.Error(w, "coordinator down", http.StatusServiceUnavailable)
			return
		}
		c.Handler().ServeHTTP(w, r)
	}))
	cl.open()
	return cl
}

// open starts a coordinator instance and its crash watcher.
func (cl *chaosCluster) open() {
	c, err := Open(cl.cfg)
	if err != nil {
		cl.t.Errorf("chaos: reopen failed: %v", err)
		cl.srv.CloseClientConnections()
		return
	}
	cl.cur.Store(c)
	go func() {
		select {
		case <-c.Crashed():
			cl.cur.Store(nil)
			cl.mu.Lock()
			stopped := cl.stopped
			if !stopped {
				cl.restarts++
			}
			cl.mu.Unlock()
			if stopped {
				return
			}
			// A beat of downtime: workers must ride it out with retries.
			time.Sleep(20 * time.Millisecond)
			cl.open()
		case <-c.Done():
		}
	}()
}

func (cl *chaosCluster) stop() {
	cl.mu.Lock()
	cl.stopped = true
	cl.mu.Unlock()
	if c := cl.cur.Load(); c != nil {
		c.Close()
	}
	cl.srv.Close()
}

// waitMerged polls until the current coordinator reports the campaign
// merged.
func (cl *chaosCluster) waitMerged(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if c := cl.cur.Load(); c != nil {
			if st := c.Status(); st.Merged {
				return true
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	return false
}

// chaosSeeds returns the fault-schedule seeds to sweep: 1..4 by default,
// extended via NCG_CHAOS_SEEDS (the CI chaos job sweeps more).
func chaosSeeds(t *testing.T) []int64 {
	n := 4
	if s := os.Getenv("NCG_CHAOS_SEEDS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			t.Fatalf("bad NCG_CHAOS_SEEDS %q", s)
		}
		n = v
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return seeds
}

// TestChaosParity is the campaign service's central robustness claim:
// under every seeded fault-injection schedule — worker crashes mid-shard,
// silenced heartbeats forcing lease expiry and re-lease, stalled workers
// completing after their lease was re-granted, duplicate lease grants,
// coordinator crashes before the shard write, before the manifest append,
// and mid-append (torn manifest tail), each followed by a restart from
// the manifest — the merged record stream is byte-identical to the
// single-process campaign.Run output.
func TestChaosParity(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is not -short")
	}
	want := singleProcessBytes(t)
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			sched := faultinject.Seeded(seed, 8, 1, 4)
			inj := faultinject.New(sched)
			cfg := Config{
				Campaign:  testCampaign(),
				Dir:       t.TempDir(),
				ShardSize: 3,
				LeaseTTL:  150 * time.Millisecond,
				Injector:  inj,
				Logf:      t.Logf,
			}
			cl := startChaosCluster(t, cfg)
			defer cl.stop()

			// Three worker slots; a worker killed by an injected crash is
			// replaced, like a supervisor restarting a dead process.
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var wg sync.WaitGroup
			var crashes atomic.Int32
			var workerErr atomic.Value
			var spawn func(slot, gen int)
			spawn = func(slot, gen int) {
				wg.Add(1)
				go func() {
					defer wg.Done()
					name := fmt.Sprintf("w%d.%d", slot, gen)
					_, err := RunWorker(ctx, WorkerConfig{
						URL:        cl.srv.URL,
						Campaign:   testCampaign(),
						Name:       name,
						Injector:   inj,
						RetryBase:  20 * time.Millisecond,
						RetryMax:   250 * time.Millisecond,
						MaxRetries: 100,
						StallFor:   500 * time.Millisecond,
						Logf:       t.Logf,
					})
					switch {
					case err == nil || errors.Is(err, context.Canceled):
					case errors.Is(err, ErrInjectedCrash):
						if n := crashes.Add(1); n < 24 && ctx.Err() == nil {
							spawn(slot, gen+1)
						}
					default:
						workerErr.Store(fmt.Errorf("worker %s: %w", name, err))
					}
				}()
			}
			for slot := 0; slot < 3; slot++ {
				spawn(slot, 0)
			}

			if !cl.waitMerged(60 * time.Second) {
				cancel()
				wg.Wait()
				c := cl.cur.Load()
				var st Status
				if c != nil {
					st = c.Status()
				}
				t.Fatalf("campaign never merged under schedule seed %d; status %+v, fired %v",
					seed, st, inj.Fired())
			}
			cancel()
			wg.Wait()
			if err, _ := workerErr.Load().(error); err != nil {
				t.Fatalf("unexpected worker failure: %v", err)
			}

			got, err := os.ReadFile(cl.cur.Load().ResultPath())
			if err != nil {
				t.Fatalf("read merged stream: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("seed %d: merged stream differs from single-process run (%d vs %d bytes); faults fired: %v",
					seed, len(got), len(want), inj.Fired())
			}
			t.Logf("seed %d: parity held through %d coordinator restarts, %d worker crashes, faults %v",
				seed, cl.restarts, crashes.Load(), inj.Fired())
		})
	}
}

// TestChaosInjectorActuallyFires pins that the seeded schedules used by
// the parity sweep are not vacuous: across the default seeds, every fault
// site fires at least once.
func TestChaosInjectorActuallyFires(t *testing.T) {
	fired := map[faultinject.Point]bool{}
	for seed := int64(1); seed <= 16; seed++ {
		for p, m := range faultinject.Seeded(seed, 8, 1, 4) {
			if len(m) > 0 {
				fired[p] = true
			}
		}
	}
	for _, p := range []faultinject.Point{
		faultinject.ShardWrite, faultinject.ManifestAppend, faultinject.LeaseGrant,
		faultinject.Heartbeat, faultinject.WorkerInstance,
	} {
		if !fired[p] {
			t.Fatalf("no seeded schedule ever fires %s", p)
		}
	}
}
