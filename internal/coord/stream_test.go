package coord

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ncg/internal/campaign"
	"ncg/internal/game"
	"ncg/internal/gen"
	"ncg/internal/graph"
	"ncg/internal/rng"
)

// startWorkers launches n fault-free workers against url and returns a
// collector that fails the test if any worker errored.
func startWorkers(t *testing.T, url string, n int) func() {
	t.Helper()
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("sw%d", i)
		go func() {
			_, err := RunWorker(context.Background(), WorkerConfig{
				URL: url, Campaign: testCampaign(), Name: name,
			})
			errs <- err
		}()
	}
	return func() {
		t.Helper()
		for i := 0; i < n; i++ {
			if err := <-errs; err != nil {
				t.Fatalf("worker: %v", err)
			}
		}
	}
}

// completedCoordinator opens a coordinator, drives workers until the
// campaign merges, and returns it with its server and canonical bytes.
func completedCoordinator(t *testing.T) (*Coordinator, *httptest.Server, []byte) {
	t.Helper()
	want := singleProcessBytes(t)
	c, err := Open(Config{Campaign: testCampaign(), Dir: t.TempDir(), ShardSize: 3, LeaseTTL: time.Second})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	runWorkers(t, srv.URL, 2)
	select {
	case <-c.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("campaign did not complete")
	}
	return c, srv, want
}

// TestStreamPrefixProperty is the cursor-resume property test: ANY
// interleaving of cursor-resumed /v1/stream reads — random per-request
// chunk caps, a fresh request per chunk, polls racing live shard
// completions — delivers a byte stream that is at every step a
// byte-prefix of the canonical records.jsonl and equals it exactly at
// completion. Chunk responses are also asserted to respect the requested
// cap: a client's memory exposure is what it asked for.
func TestStreamPrefixProperty(t *testing.T) {
	want := singleProcessBytes(t)
	c, err := Open(Config{Campaign: testCampaign(), Dir: t.TempDir(), ShardSize: 2, LeaseTTL: time.Second})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer c.Close()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	// Workers complete shards while the reader interleaves its polls.
	waitWorkers := startWorkers(t, srv.URL, 2)

	s := rng.NewStream(12345)
	var got bytes.Buffer
	cursor := ""
	for i := 0; ; i++ {
		if i > 100000 {
			t.Fatalf("stream never completed (%d/%d bytes)", got.Len(), len(want))
		}
		max := int(s.Next()%512) + 1 // 1..512 bytes: exercises every boundary
		u := fmt.Sprintf("%s/v1/stream?wait=300ms&max=%d", srv.URL, max)
		if cursor != "" {
			u += "&cursor=" + url.QueryEscape(cursor)
		}
		res, err := http.Get(u)
		if err != nil {
			t.Fatalf("poll %d: %v", i, err)
		}
		body, err := io.ReadAll(res.Body)
		res.Body.Close()
		if err != nil {
			t.Fatalf("poll %d: read: %v", i, err)
		}
		switch res.StatusCode {
		case http.StatusOK:
			if len(body) > max {
				t.Fatalf("poll %d: chunk of %d bytes exceeds the requested cap %d", i, len(body), max)
			}
			got.Write(body)
			if !bytes.HasPrefix(want, got.Bytes()) {
				t.Fatalf("poll %d: delivered bytes stopped being a canonical prefix at %d bytes", i, got.Len())
			}
			cursor = res.Header.Get(HeaderCursor)
		case http.StatusNoContent:
			cursor = res.Header.Get(HeaderCursor)
		default:
			t.Fatalf("poll %d: status %s: %s", i, res.Status, body)
		}
		if res.Header.Get(HeaderComplete) == "true" {
			break
		}
	}
	waitWorkers()
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("streamed %d bytes, want the canonical %d", got.Len(), len(want))
	}
}

// TestStreamSSE drives the SSE transport end to end: every data event is
// one record line, ids are valid resume cursors, and the stream closes
// with a complete event after exactly the canonical bytes.
func TestStreamSSE(t *testing.T) {
	c, srv, want := completedCoordinator(t)
	res, err := http.Get(srv.URL + "/v1/stream?sse=1")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var got bytes.Buffer
	var lastID string
	complete := false
	sc := bufio.NewScanner(res.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "id: "):
			lastID = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "data: "):
			if event == "complete" {
				complete = true
			} else {
				got.WriteString(strings.TrimPrefix(line, "data: "))
				got.WriteByte('\n')
			}
		case line == "":
			event = ""
		}
		if complete {
			break
		}
	}
	if !complete {
		t.Fatalf("no complete event (reassembled %d bytes)", got.Len())
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("SSE delivered %d bytes, want %d", got.Len(), len(want))
	}
	if off, err := c.parseCursor(lastID, false); err != nil || off != int64(len(want)) {
		t.Fatalf("final SSE id %q: offset %d err %v, want %d", lastID, off, err, len(want))
	}
}

// TestStreamSSEResumesFromLastEventID pins the EventSource reconnect
// contract: a second SSE request carrying a mid-stream Last-Event-ID
// delivers exactly the remaining suffix.
func TestStreamSSEResumesFromLastEventID(t *testing.T) {
	c, srv, want := completedCoordinator(t)
	cut := int64(len(want) / 2)
	// Snap to a record boundary, like a real consumer's last seen id.
	cut = int64(bytes.LastIndexByte(want[:cut], '\n') + 1)
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/stream?sse=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", c.cursorToken(cut, false))
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var got bytes.Buffer
	sc := bufio.NewScanner(res.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: ") && event != "complete":
			got.WriteString(strings.TrimPrefix(line, "data: "))
			got.WriteByte('\n')
		case line == "":
			event = ""
		}
		if event == "complete" {
			break
		}
	}
	if !bytes.Equal(got.Bytes(), want[cut:]) {
		t.Fatalf("resumed SSE delivered %d bytes, want the %d-byte suffix", got.Len(), len(want)-int(cut))
	}
}

// TestStreamAdmissionControl pins the overload contract: past
// MaxStreamClients concurrent streams, a new client gets 503 with a
// Retry-After hint and the refusal is counted; freed slots re-admit.
func TestStreamAdmissionControl(t *testing.T) {
	want := singleProcessBytes(t)
	c, err := Open(Config{
		Campaign: testCampaign(), Dir: t.TempDir(), ShardSize: 3,
		MaxStreamClients: 2, RetryAfter: 3 * time.Second,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer c.Close()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	// Two long-polls occupy both slots (nothing is committed yet, so they
	// wait out their windows).
	type held struct {
		res *http.Response
		err error
	}
	hold := make(chan held, 2)
	for i := 0; i < 2; i++ {
		go func() {
			res, err := http.Get(srv.URL + "/v1/stream?wait=2s")
			hold <- held{res, err}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.Status().StreamClients != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("stream slots never filled: %+v", c.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	res, err := http.Get(srv.URL + "/v1/stream?wait=1ms")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("third client got %s, want 503", res.Status)
	}
	if ra := res.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", ra)
	}
	if st := c.Status(); st.StreamRefused != 1 {
		t.Fatalf("StreamRefused = %d, want 1", st.StreamRefused)
	}
	for i := 0; i < 2; i++ {
		h := <-hold
		if h.err != nil {
			t.Fatalf("held poll: %v", h.err)
		}
		io.Copy(io.Discard, h.res.Body)
		h.res.Body.Close()
	}
	// Slots freed: admitted again, and the stream serves correctly.
	runWorkers(t, srv.URL, 2)
	<-c.Done()
	res, err = http.Get(srv.URL + "/v1/stream?wait=1s")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK || !bytes.HasPrefix(want, body) {
		t.Fatalf("post-release stream: %s, %d bytes", res.Status, len(body))
	}
}

// pipeListener feeds net.Pipe connections to an http.Server. net.Pipe is
// fully synchronous — a server write blocks until the client reads — so a
// stalled reader exerts true backpressure with zero OS socket buffering
// in the way, making write-deadline eviction deterministic to test.
type pipeListener struct {
	conns chan net.Conn
	once  sync.Once
	done  chan struct{}
}

func newPipeListener() *pipeListener {
	return &pipeListener{conns: make(chan net.Conn), done: make(chan struct{})}
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}
func (l *pipeListener) Close() error   { l.once.Do(func() { close(l.done) }); return nil }
func (l *pipeListener) Addr() net.Addr { return pipeAddr{} }

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }

// TestStreamSlowClientEviction pins the stalled-reader contract: a client
// that opens a stream and then never reads is disconnected once the write
// deadline fires, the eviction is counted, the slot is released — and the
// campaign completes and merges with the stalled client still attached (a
// stalled reader never delays shard completion or the merge).
func TestStreamSlowClientEviction(t *testing.T) {
	c, err := Open(Config{
		Campaign: testCampaign(), Dir: t.TempDir(), ShardSize: 3,
		StreamWriteTimeout: 200 * time.Millisecond,
		StreamPollMax:      100 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer c.Close()
	// Workers use a normal TCP server; the stalled client gets a pipe
	// server over the same handler.
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	ln := newPipeListener()
	pipeSrv := &http.Server{Handler: c.Handler()}
	go pipeSrv.Serve(ln)
	defer pipeSrv.Close()

	serverConn, clientConn := net.Pipe()
	defer clientConn.Close()
	select {
	case ln.conns <- serverConn:
	case <-time.After(5 * time.Second):
		t.Fatalf("pipe server never accepted")
	}
	clientConn.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := io.WriteString(clientConn, "GET /v1/stream?sse=1 HTTP/1.1\r\nHost: ncg\r\n\r\n"); err != nil {
		t.Fatalf("send request: %v", err)
	}
	// The client now reads nothing, ever: the handler's first flush blocks
	// until the write deadline evicts it.
	deadline := time.Now().Add(10 * time.Second)
	for c.Status().StreamClients != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("stalled client never admitted: %+v", c.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The campaign must run to completion with the stalled reader attached.
	runWorkers(t, srv.URL, 2)
	select {
	case <-c.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("campaign stalled behind a slow stream client; status %+v", c.Status())
	}

	// The stalled client is evicted and its slot freed.
	deadline = time.Now().Add(10 * time.Second)
	for {
		st := c.Status()
		if st.StreamEvicted >= 1 && st.StreamClients == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stalled client never evicted: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStreamCursorRejections pins the 4xx classification of bad resume
// cursors: malformed is 400, a different campaign's cursor is 409, an
// offset beyond the merged stream is 416 — and none of them disturb the
// coordinator (a fresh full read still matches).
func TestStreamCursorRejections(t *testing.T) {
	c, srv, want := completedCoordinator(t)
	for _, tc := range []struct {
		cursor string
		want   int
	}{
		{"garbage", http.StatusBadRequest},
		{"::", http.StatusConflict}, // empty campaign sum: minted elsewhere
		{c.fpSum + ":x", http.StatusBadRequest},
		{c.fpSum + ":-1", http.StatusBadRequest},
		{c.fpSum + ":" + fmt.Sprint(len(want)+1), http.StatusRequestedRangeNotSatisfiable},
		{"deadbeefdeadbeef:0", http.StatusConflict},
	} {
		res, err := http.Get(srv.URL + "/v1/stream?cursor=" + url.QueryEscape(tc.cursor))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
		if res.StatusCode != tc.want {
			t.Errorf("cursor %q: status %d, want %d", tc.cursor, res.StatusCode, tc.want)
		}
	}
	// No state skew: the pristine full read still matches.
	res, err := http.Get(srv.URL + "/v1/stream")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if !bytes.Equal(body, want) {
		t.Fatalf("post-rejection stream differs (%d vs %d bytes)", len(body), len(want))
	}
}

// TestWatchResumesAcrossRestart runs a watch client against a coordinator
// that is closed and reopened mid-stream (the planned-maintenance form of
// a crash): the cursor carries the client across the restart to a
// byte-identical stream.
func TestWatchResumesAcrossRestart(t *testing.T) {
	want := singleProcessBytes(t)
	cfg := Config{Campaign: testCampaign(), Dir: t.TempDir(), ShardSize: 3, LeaseTTL: time.Second}
	c1, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var handler atomic.Value
	handler.Store(c1.Handler())
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(http.Handler).ServeHTTP(w, r)
	}))
	defer srv.Close()
	runWorkers(t, srv.URL, 2)
	<-c1.Done()

	var got bytes.Buffer
	restarted := false
	stats, err := RunWatch(context.Background(), WatchConfig{
		URL: srv.URL, Name: "restart-watch", Wait: 200 * time.Millisecond, ChunkBytes: 900,
		OnChunk: func(chunk []byte, cursor string, complete bool) error {
			got.Write(chunk)
			if !restarted && got.Len() >= len(want)/3 {
				restarted = true
				c1.Close()
				c2, err := Open(cfg)
				if err != nil {
					return err
				}
				t.Cleanup(func() { c2.Close() })
				handler.Store(c2.Handler())
			}
			return nil
		},
		RetryBase: 20 * time.Millisecond, RetryMax: 200 * time.Millisecond,
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	if !restarted {
		t.Fatalf("restart never triggered (%d bytes in chunks of 900)", got.Len())
	}
	if !stats.Complete || !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("restart watch: complete=%v, %d bytes, want %d", stats.Complete, got.Len(), len(want))
	}
}

// FuzzStreamCursor throws arbitrary cursor and wait strings at
// /v1/stream: every response must be 200/204 or a clean 4xx — never a
// 5xx, never a panic — and the coordinator's canonical stream must be
// unaffected afterwards.
func FuzzStreamCursor(f *testing.F) {
	c, err := Open(Config{
		Campaign: testCampaign(), Dir: f.TempDir(), ShardSize: 3,
		LeaseTTL: time.Second, StreamPollMax: 200 * time.Millisecond,
	})
	if err != nil {
		f.Fatalf("Open: %v", err)
	}
	f.Cleanup(func() { c.Close() })
	srv := httptest.NewServer(c.Handler())
	f.Cleanup(srv.Close)
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("fz%d", i)
		go func() {
			_, err := RunWorker(context.Background(), WorkerConfig{
				URL: srv.URL, Campaign: testCampaign(), Name: name,
			})
			errs <- err
		}()
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			f.Fatalf("worker: %v", err)
		}
	}
	<-c.Done()
	res, err := http.Get(srv.URL + "/v1/stream")
	if err != nil {
		f.Fatal(err)
	}
	want, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if len(want) == 0 {
		f.Fatalf("empty canonical stream")
	}

	f.Add("", "1ms")
	f.Add("garbage", "1ms")
	f.Add("aaaa:bbbb", "0s")
	f.Add("0123456789abcdef:-99", "1ms")
	f.Add("0123456789abcdef:999999999999", "xx")
	f.Add(":::::", "-5s")
	f.Add("\x00\xff:\x00", "1ns")
	f.Add(c.fpSum+":0", "10h")
	f.Add(c.fpSum+":999999999999", "1ms")
	f.Fuzz(func(t *testing.T, cursor, wait string) {
		q := url.Values{}
		q.Set("cursor", cursor)
		q.Set("wait", wait)
		res, err := http.Get(srv.URL + "/v1/stream?" + q.Encode())
		if err != nil {
			t.Fatalf("request failed: %v", err)
		}
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
		ok := res.StatusCode == http.StatusOK || res.StatusCode == http.StatusNoContent ||
			(res.StatusCode >= 400 && res.StatusCode < 500)
		if !ok {
			t.Fatalf("cursor %q wait %q: status %d", cursor, wait, res.StatusCode)
		}
		// No state skew: the pristine full read still matches.
		res, err = http.Get(srv.URL + "/v1/stream?" + url.Values{"wait": {"1s"}}.Encode())
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(res.Body)
		res.Body.Close()
		if !bytes.Equal(body, want) {
			t.Fatalf("cursor %q skewed the stream: %d vs %d bytes", cursor, len(body), len(want))
		}
	})
}

// hitCampaign is a deterministic mix of hit and miss records: the check
// accepts exactly the n == 6 paths, so hits land at instances 3, 8, 13, 18
// of a 20-instance enumerated sweep.
func hitCampaign() campaign.Campaign {
	return campaign.Campaign{
		Name: "coord-hits",
		Samplers: []campaign.Sampler{{
			Name: "paths", Total: 20,
			Sample: func(n, i int, _ *gen.Rand) *graph.Graph { return graph.Path(3 + i%5) },
		}},
		Variants:  []campaign.Variant{{Name: "check", New: func(int) game.Game { return game.NewAsymSwap(game.Sum) }}},
		Instances: 20,
		Seed:      1,
		NewCheck: func() func(g *graph.Graph) bool {
			return func(g *graph.Graph) bool { return g.N() == 6 }
		},
		Moves: []game.Move{{Agent: 0, Drop: []int{1}, Add: []int{2}}},
	}
}

// completedHitCoordinator merges hitCampaign and returns the coordinator
// with its canonical full and hit-only byte streams.
func completedHitCoordinator(t *testing.T) (*Coordinator, *httptest.Server, []byte, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if _, err := campaign.Run(hitCampaign(), campaign.Options{}, campaign.NewJSONLSink(&buf)); err != nil {
		t.Fatalf("single-process run: %v", err)
	}
	want := buf.Bytes()
	c, err := Open(Config{Campaign: hitCampaign(), Dir: t.TempDir(), ShardSize: 3, LeaseTTL: time.Second})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("hw%d", i)
		go func() {
			_, err := RunWorker(context.Background(), WorkerConfig{URL: srv.URL, Campaign: hitCampaign(), Name: name})
			errs <- err
		}()
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}
	select {
	case <-c.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("campaign did not complete")
	}
	return c, srv, want, filterHits(want)
}

// TestStreamHitsFilter drives GET /v1/stream?hits=1 with tiny random
// chunk caps: the concatenated bodies must equal exactly the hit lines of
// the canonical stream, every body line must be a hit record, and the
// cursors must live in the filtered namespace while still advancing
// through hit-free stretches (a 204 with a moved cursor).
func TestStreamHitsFilter(t *testing.T) {
	_, srv, _, wantHits := completedHitCoordinator(t)
	s := rng.NewStream(999)
	var got bytes.Buffer
	cursor := ""
	for i := 0; ; i++ {
		if i > 100000 {
			t.Fatalf("filtered stream never completed (%d/%d bytes)", got.Len(), len(wantHits))
		}
		max := int(s.Next()%256) + 1
		u := fmt.Sprintf("%s/v1/stream?hits=1&wait=300ms&max=%d", srv.URL, max)
		if cursor != "" {
			u += "&cursor=" + url.QueryEscape(cursor)
		}
		res, err := http.Get(u)
		if err != nil {
			t.Fatalf("poll %d: %v", i, err)
		}
		body, err := io.ReadAll(res.Body)
		res.Body.Close()
		if err != nil {
			t.Fatalf("poll %d: read: %v", i, err)
		}
		switch res.StatusCode {
		case http.StatusOK:
			for _, line := range bytes.SplitAfter(body, []byte("\n")) {
				if len(line) > 0 && !hitLine(line) {
					t.Fatalf("poll %d: non-hit line in filtered body: %s", i, line)
				}
			}
			got.Write(body)
		case http.StatusNoContent:
		default:
			t.Fatalf("poll %d: status %s: %s", i, res.Status, body)
		}
		cursor = res.Header.Get(HeaderCursor)
		if !strings.Contains(cursor, ":"+filteredNS+":") {
			t.Fatalf("poll %d: cursor %q is not in the filtered namespace", i, cursor)
		}
		if !bytes.HasPrefix(wantHits, got.Bytes()) {
			t.Fatalf("poll %d: filtered bytes stopped being a prefix of the hit lines at %d bytes", i, got.Len())
		}
		if res.Header.Get(HeaderComplete) == "true" {
			break
		}
	}
	if !bytes.Equal(got.Bytes(), wantHits) {
		t.Fatalf("filtered stream delivered %d bytes, want the %d hit-line bytes", got.Len(), len(wantHits))
	}
}

// TestStreamHitsCursorNamespace pins the namespace separation: a plain
// cursor on ?hits=1 and a filtered cursor on the plain stream are both
// rejected with 400, and the plain stream itself is untouched by the
// filtered endpoint's existence.
func TestStreamHitsCursorNamespace(t *testing.T) {
	c, srv, want, _ := completedHitCoordinator(t)
	get := func(u string) *http.Response {
		t.Helper()
		res, err := http.Get(u)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		io.Copy(io.Discard, res.Body)
		return res
	}
	plain := c.cursorToken(0, false)
	filtered := c.cursorToken(0, true)
	if res := get(srv.URL + "/v1/stream?hits=1&cursor=" + url.QueryEscape(plain)); res.StatusCode != http.StatusBadRequest {
		t.Fatalf("plain cursor on ?hits=1: status %s, want 400", res.Status)
	}
	if res := get(srv.URL + "/v1/stream?cursor=" + url.QueryEscape(filtered)); res.StatusCode != http.StatusBadRequest {
		t.Fatalf("filtered cursor on plain stream: status %s, want 400", res.Status)
	}
	// The plain stream still serves the full canonical bytes.
	res, err := http.Get(srv.URL + fmt.Sprintf("/v1/stream?max=%d", len(want)+1))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if !bytes.Equal(body, want) {
		t.Fatalf("plain stream served %d bytes, want the canonical %d", len(body), len(want))
	}
}

// TestStreamHitsSSE: the SSE transport under ?hits=1 emits exactly the
// hit records as events (ids in the filtered namespace) and closes with a
// complete event.
func TestStreamHitsSSE(t *testing.T) {
	_, srv, _, wantHits := completedHitCoordinator(t)
	res, err := http.Get(srv.URL + "/v1/stream?sse=1&hits=1")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var got bytes.Buffer
	lastID := ""
	complete := false
	sc := bufio.NewScanner(res.Body)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "id: "):
			lastID = strings.TrimPrefix(line, "id: ")
			if !strings.Contains(lastID, ":"+filteredNS+":") {
				t.Fatalf("SSE id %q is not in the filtered namespace", lastID)
			}
		case strings.HasPrefix(line, "data: "):
			if event == "complete" {
				complete = true
			} else {
				got.WriteString(strings.TrimPrefix(line, "data: "))
				got.WriteByte('\n')
			}
		case line == "":
			event = ""
		}
		if complete {
			break
		}
	}
	if !complete {
		t.Fatalf("SSE stream ended without a complete event (read %d bytes)", got.Len())
	}
	if !bytes.Equal(got.Bytes(), wantHits) {
		t.Fatalf("SSE hits stream delivered %d bytes, want %d", got.Len(), len(wantHits))
	}
}
