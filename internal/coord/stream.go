package coord

// The live result stream: GET /v1/stream serves the committed
// merged-record prefix — the concatenation of completed shard files in
// plan order up to the first incomplete shard, always a byte-prefix of
// the canonical records.jsonl — to many concurrent clients, with overload
// safety as the design center:
//
//   - No in-memory fan-out. Every chunk is read straight from the durable
//     shard files at serve time; the coordinator holds O(StreamChunkBytes)
//     per in-flight response and nothing per idle or lagging client.
//   - Monotonic resume cursors. A cursor is "<campaign-sum>:<offset>"; a
//     client advances it only after fully reading a chunk, so a
//     reconnecting client resumes exactly after its last acked bytes and
//     the stream it observes is always a byte-prefix of records.jsonl.
//   - Slow-client eviction. Every chunk write carries a deadline
//     (StreamWriteTimeout); a reader that cannot absorb it is
//     disconnected. A stalled client therefore never delays shard
//     completion, the merge, or any other client.
//   - Admission control. Past MaxStreamClients concurrent streams the
//     endpoint refuses with 503 + Retry-After instead of degrading
//     everyone.
//
// Two transports share the logic: long-poll (the default; one bounded
// chunk per request, 204 + cursor echo on an empty wait) and SSE
// (?sse=1; one event per record line, id: carrying the resume cursor so
// EventSource reconnects resume for free).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"ncg/internal/faultinject"
)

// Stream response headers.
const (
	// HeaderCursor carries the resume cursor for the bytes after this
	// response's body. Clients must adopt it only after reading the full
	// body (Content-Length is always set on long-poll responses, so a
	// severed chunk is detectable and must be discarded).
	HeaderCursor = "X-Ncg-Cursor"
	// HeaderComplete is "true" once the cursor is at the end of a merged
	// campaign: no further bytes will ever exist.
	HeaderComplete = "X-Ncg-Complete"
)

// cursorErr is a stream-cursor rejection with its HTTP status: malformed
// cursors are 400, cursors minted for a different campaign are 409, and
// offsets beyond any byte the campaign can commit are 416. All are
// permanent — retrying cannot fix a bad cursor.
type cursorErr struct {
	code int
	msg  string
}

func (e cursorErr) Error() string { return e.msg }

// filteredNS is the cursor-namespace tag of the hit-filtered stream. A
// filtered cursor is "<campaign-sum>:hits:<offset>": the offset still
// indexes the underlying committed byte stream (it is the scan position,
// advanced past misses and hits alike), but the tag keeps the two cursor
// families apart — a plain cursor handed to ?hits=1 (or vice versa) is a
// client bug and is rejected instead of silently changing semantics.
const filteredNS = "hits"

// parseCursor validates a resume cursor against this campaign and the
// request's filter mode. The empty cursor is the stream's start in either
// namespace.
func (c *Coordinator) parseCursor(s string, hits bool) (int64, error) {
	if s == "" {
		return 0, nil
	}
	sum, off, ok := strings.Cut(s, ":")
	if !ok {
		return 0, cursorErr{http.StatusBadRequest, fmt.Sprintf("malformed cursor %q: want <campaign>:<offset>", s)}
	}
	if sum != c.fpSum {
		return 0, cursorErr{http.StatusConflict, fmt.Sprintf("stale cursor: minted for campaign %s, this coordinator serves %s", sum, c.fpSum)}
	}
	filtered := false
	if rest, ok := strings.CutPrefix(off, filteredNS+":"); ok {
		filtered = true
		off = rest
	}
	if filtered != hits {
		if filtered {
			return 0, cursorErr{http.StatusBadRequest, fmt.Sprintf("cursor %q is from the hit-filtered stream; resume it with ?hits=1", s)}
		}
		return 0, cursorErr{http.StatusBadRequest, fmt.Sprintf("cursor %q is from the plain stream; a ?hits=1 stream needs a %s-namespace cursor", s, filteredNS)}
	}
	n, err := strconv.ParseInt(off, 10, 64)
	if err != nil || n < 0 {
		return 0, cursorErr{http.StatusBadRequest, fmt.Sprintf("malformed cursor offset %q", off)}
	}
	return n, nil
}

// cursorToken formats the resume cursor for a byte offset in the plain or
// hit-filtered namespace.
func (c *Coordinator) cursorToken(off int64, hits bool) string {
	if hits {
		return fmt.Sprintf("%s:%s:%d", c.fpSum, filteredNS, off)
	}
	return fmt.Sprintf("%s:%d", c.fpSum, off)
}

// fileSpan is one contiguous read from a shard file.
type fileSpan struct {
	path string
	off  int64
	n    int64
}

// chunkSpansLocked maps the byte range [off, off+max) of the committed
// prefix onto shard-file reads, clamped to the committed length. Callers
// hold mu; the file IO itself happens after mu is released — the merge
// and lease paths never wait on a stream read.
func (c *Coordinator) chunkSpansLocked(off int64, max int) []fileSpan {
	var spans []fileSpan
	want := int64(max)
	var at int64
	for i := range c.states {
		if c.states[i].status != shardDone || want <= 0 {
			break
		}
		size := c.states[i].bytes
		if off < at+size {
			skip := int64(0)
			if off > at {
				skip = off - at
			}
			n := size - skip
			if n > want {
				n = want
			}
			spans = append(spans, fileSpan{
				path: filepath.Join(c.cfg.Dir, shardFileName(i)),
				off:  skip,
				n:    n,
			})
			want -= n
			off += n
		}
		at += size
	}
	return spans
}

// readChunk reads the spans into one bounded buffer and truncates at the
// last record boundary (newline) so resume cursors land between records;
// a single over-long record line is served unsplit (progress beats
// alignment). Returns nil on any read failure — the caller treats it as
// "nothing readable right now" and the client re-polls.
func readChunk(spans []fileSpan) []byte {
	var buf []byte
	for _, sp := range spans {
		f, err := os.Open(sp.path)
		if err != nil {
			return nil
		}
		part := make([]byte, sp.n)
		_, err = f.ReadAt(part, sp.off)
		f.Close()
		if err != nil {
			return nil
		}
		buf = append(buf, part...)
	}
	if i := bytes.LastIndexByte(buf, '\n'); i >= 0 && i+1 < len(buf) {
		buf = buf[:i+1]
	}
	return buf
}

// admitStream reserves one stream-client slot, or refuses with 503 +
// Retry-After when the client cap is reached. The caller must release
// the slot via releaseStream.
func (c *Coordinator) admitStream(w http.ResponseWriter) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.streams >= c.cfg.MaxStreamClients {
		c.streamRefused++
		w.Header().Set("Retry-After", retryAfterSeconds(c.cfg.RetryAfter))
		http.Error(w, fmt.Sprintf("stream admission: %d clients connected (cap %d)", c.streams, c.cfg.MaxStreamClients),
			http.StatusServiceUnavailable)
		return false
	}
	c.streams++
	return true
}

func (c *Coordinator) releaseStream() {
	c.mu.Lock()
	c.streams--
	c.mu.Unlock()
}

// retryAfterSeconds renders a duration as a Retry-After header value
// (whole seconds, at least 1).
func retryAfterSeconds(d time.Duration) string {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return strconv.Itoa(s)
}

// handleStream serves GET /v1/stream:
//
//	?cursor=<tok>  resume after the last acked byte ("" = start; SSE
//	               clients may send Last-Event-ID instead)
//	?wait=<dur>    long-poll: hold an empty poll open up to this long
//	               (capped by StreamPollMax) waiting for new commits
//	?max=<bytes>   chunk cap for this response (capped by
//	               StreamChunkBytes)
//	?sse=1         server-sent events: one event per record line, id:
//	               carrying the resume cursor, "complete" event at the
//	               merged end
//	?hits=1        server-side hit filter: only records with "hit":true
//	               are served; cursors live in their own "hits"
//	               namespace (the scan position over the underlying
//	               stream), so a dashboard follows hits without draining
//	               the full record stream. Plain cursors are unchanged
//	               and the two namespaces never mix.
//
// A long-poll response is one bounded chunk (200, Content-Length set,
// X-Ncg-Cursor = the cursor after it) or empty (204 with the cursor
// echoed). X-Ncg-Complete: true marks the end of a merged campaign. A
// filtered 204 still advances the cursor past scanned misses, so polls
// make progress even through hit-free stretches.
func (c *Coordinator) handleStream(w http.ResponseWriter, r *http.Request) {
	cur := r.URL.Query().Get("cursor")
	if cur == "" {
		cur = r.Header.Get("Last-Event-ID")
	}
	hits := false
	if s := r.URL.Query().Get("hits"); s != "" && s != "0" {
		hits = true
	}
	off, err := c.parseCursor(cur, hits)
	if err != nil {
		ce := err.(cursorErr)
		http.Error(w, ce.msg, ce.code)
		return
	}
	// An offset beyond every byte the plan can produce is rejected before
	// admission: when the campaign is merged the total is exact; before
	// that the committed prefix is the only provable bound, and a cursor
	// past a *merged* total can never become valid.
	c.mu.Lock()
	if c.crashed {
		c.mu.Unlock()
		http.Error(w, "coordinator crashed", http.StatusServiceUnavailable)
		return
	}
	prefix := c.prefixLocked()
	merged := c.merged
	c.mu.Unlock()
	if merged && off > prefix {
		http.Error(w, fmt.Sprintf("cursor offset %d beyond the merged stream (%d bytes)", off, prefix),
			http.StatusRequestedRangeNotSatisfiable)
		return
	}
	if !c.admitStream(w) {
		return
	}
	defer c.releaseStream()
	maxChunk := c.cfg.StreamChunkBytes
	if s := r.URL.Query().Get("max"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 && n < maxChunk {
			maxChunk = n
		}
	}
	if r.URL.Query().Get("sse") != "" || strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		c.streamSSE(w, r, off, maxChunk, hits)
		return
	}
	c.streamPoll(w, r, off, maxChunk, hits)
}

// hitLine reports whether one record line satisfies the ?hits=1 filter.
// Lines are whole records (readChunk truncates at record boundaries), so
// a plain unmarshal of the one field is exact — no substring guessing.
func hitLine(line []byte) bool {
	var rec struct {
		Hit bool `json:"hit"`
	}
	return json.Unmarshal(line, &rec) == nil && rec.Hit
}

// filterHits keeps only the hit lines of a record-aligned chunk.
func filterHits(chunk []byte) []byte {
	var out []byte
	for len(chunk) > 0 {
		line := chunk
		if i := bytes.IndexByte(chunk, '\n'); i >= 0 {
			line = chunk[:i+1]
		}
		chunk = chunk[len(line):]
		if hitLine(line) {
			out = append(out, line...)
		}
	}
	return out
}

// nextChunk blocks until the committed prefix extends past off, the
// campaign is complete at off, the deadline passes, or the request dies.
// It returns the chunk (nil when empty), whether off is the merged end,
// and whether the coordinator crashed while waiting.
func (c *Coordinator) nextChunk(r *http.Request, off int64, max int, deadline time.Time) (chunk []byte, complete, crashed bool) {
	for {
		c.mu.Lock()
		if c.crashed {
			c.mu.Unlock()
			return nil, false, true
		}
		prefix := c.prefixLocked()
		merged := c.merged
		var spans []fileSpan
		if off < prefix {
			spans = c.chunkSpansLocked(off, max)
		}
		wait := c.commitCh
		c.mu.Unlock()
		if spans != nil {
			if chunk := readChunk(spans); len(chunk) > 0 {
				return chunk, merged && off+int64(len(chunk)) == prefix, false
			}
			// A shard file vanished mid-read (damaged underneath a live
			// coordinator); surface as an empty poll, not corrupt bytes.
		}
		if merged && off == prefix {
			return nil, true, false
		}
		now := time.Now()
		if !now.Before(deadline) {
			return nil, false, false
		}
		t := time.NewTimer(deadline.Sub(now))
		select {
		case <-wait:
		case <-r.Context().Done():
		case <-t.C:
		}
		t.Stop()
		if r.Context().Err() != nil {
			return nil, false, false
		}
	}
}

// streamPoll is the long-poll transport: one bounded chunk per request.
// In filtered mode (?hits=1) the scan keeps consuming hit-free windows
// until something matches, the campaign completes at the scan position,
// or the wait window closes; an empty response still carries the advanced
// cursor, so misses are scanned at most once across polls.
func (c *Coordinator) streamPoll(w http.ResponseWriter, r *http.Request, off int64, maxChunk int, hits bool) {
	wait := time.Duration(0)
	if s := r.URL.Query().Get("wait"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil || d < 0 {
			http.Error(w, fmt.Sprintf("bad wait %q", s), http.StatusBadRequest)
			return
		}
		wait = d
	}
	if wait > c.cfg.StreamPollMax {
		wait = c.cfg.StreamPollMax
	}
	deadline := time.Now().Add(wait)
	for {
		chunk, complete, crashed := c.nextChunk(r, off, maxChunk, deadline)
		if crashed {
			http.Error(w, "coordinator crashed", http.StatusServiceUnavailable)
			return
		}
		body := chunk
		if hits && chunk != nil {
			// The window may end mid-record and hit filtering needs whole
			// lines to parse. Trim to the last newline — the cursor is a raw
			// scan offset, so the trimmed tail is re-read next window — and
			// when not even one record fits, widen the window and retry.
			if cut := bytes.LastIndexByte(chunk, '\n') + 1; cut == 0 && !complete {
				maxChunk *= 2
				continue
			} else if cut < len(chunk) {
				chunk = chunk[:cut]
				complete = false
			}
			body = filterHits(chunk)
			off += int64(len(chunk))
			if len(body) == 0 && !complete && time.Now().Before(deadline) && r.Context().Err() == nil {
				// A hit-free window: keep scanning inside the wait budget.
				continue
			}
		}
		if len(body) == 0 {
			w.Header().Set(HeaderCursor, c.cursorToken(off, hits))
			w.Header().Set(HeaderComplete, strconv.FormatBool(complete))
			w.WriteHeader(http.StatusNoContent)
			return
		}
		next := off
		if !hits {
			next = off + int64(len(chunk))
		}
		w.Header().Set("Content-Type", "application/jsonl")
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		w.Header().Set(HeaderCursor, c.cursorToken(next, hits))
		w.Header().Set(HeaderComplete, strconv.FormatBool(complete))
		c.writeChunk(w, body)
		return
	}
}

// writeChunk writes one chunk under the slow-client deadline, firing the
// stream-side fault points: an injected Drop severs the connection after
// half the chunk (the client must detect the truncation and discard), an
// injected Crash kills the coordinator mid-stream. Failures abort the
// request via http.ErrAbortHandler — the connection dies, the deferred
// slot release runs, and nothing else ever waited on this client.
func (c *Coordinator) writeChunk(w http.ResponseWriter, chunk []byte) {
	switch c.cfg.Injector.Fire(faultinject.StreamChunk) {
	case faultinject.Crash:
		c.mu.Lock()
		c.crash("stream-chunk")
		c.mu.Unlock()
		panic(http.ErrAbortHandler)
	case faultinject.Drop:
		c.cfg.Logf("coord: injected stream disconnect mid-chunk")
		rc := http.NewResponseController(w)
		rc.SetWriteDeadline(time.Now().Add(c.cfg.StreamWriteTimeout))
		w.Write(chunk[:len(chunk)/2])
		rc.Flush()
		panic(http.ErrAbortHandler)
	}
	rc := http.NewResponseController(w)
	rc.SetWriteDeadline(time.Now().Add(c.cfg.StreamWriteTimeout))
	if _, err := w.Write(chunk); err != nil {
		// The write deadline fired or the client vanished: evict.
		c.mu.Lock()
		c.streamEvicted++
		c.mu.Unlock()
		c.cfg.Logf("coord: stream client evicted (%v)", err)
		panic(http.ErrAbortHandler)
	}
	if err := rc.Flush(); err != nil {
		c.mu.Lock()
		c.streamEvicted++
		c.mu.Unlock()
		panic(http.ErrAbortHandler)
	}
}

// streamSSE is the server-sent-events transport: a held-open response of
// one event per record line, each carrying its resume cursor as the SSE
// id (so EventSource's automatic Last-Event-ID reconnect resumes
// exactly), closed with a "complete" event at the merged end. Chunks are
// still bounded and file-backed; a slow consumer hits the per-write
// deadline and is evicted.
// In filtered mode (?hits=1) only hit records become events; the id of an
// event is the scan position after its line, so a Last-Event-ID reconnect
// resumes exactly past every record — hit or miss — the client has seen.
func (c *Coordinator) streamSSE(w http.ResponseWriter, r *http.Request, off int64, maxChunk int, hits bool) {
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	for {
		chunk, complete, crashed := c.nextChunk(r, off, maxChunk, time.Now().Add(c.cfg.StreamPollMax))
		if crashed {
			return
		}
		if r.Context().Err() != nil {
			return
		}
		if chunk != nil {
			var sse []byte
			at := off
			for len(chunk) > 0 {
				line := chunk
				if i := bytes.IndexByte(chunk, '\n'); i >= 0 {
					line = chunk[:i+1]
				}
				chunk = chunk[len(line):]
				at += int64(len(line))
				if hits && !hitLine(line) {
					continue
				}
				sse = append(sse, "id: "+c.cursorToken(at, hits)+"\ndata: "...)
				sse = append(sse, bytes.TrimRight(line, "\n")...)
				sse = append(sse, "\n\n"...)
			}
			off = at
			if len(sse) > 0 {
				// An all-miss filtered window writes nothing; the next
				// event's id (or the complete event) carries the advanced
				// scan position.
				c.writeChunk(w, sse)
			}
		}
		if complete {
			fin := fmt.Sprintf("event: complete\nid: %s\ndata: %d\n\n", c.cursorToken(off, hits), off)
			c.writeChunk(w, []byte(fin))
			return
		}
		// An empty wait window: emit an SSE comment as a keep-alive so
		// intermediaries do not reap the idle connection.
		c.writeChunk(w, []byte(": keep-alive\n\n"))
	}
}
