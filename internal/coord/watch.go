package coord

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"ncg/internal/faultinject"
	"ncg/internal/rng"
)

// errReconnect signals a connection severed mid-chunk: nothing was acked,
// so the loop re-dials immediately and resumes from the same cursor.
var errReconnect = errors.New("coord: stream connection severed mid-chunk")

// WatchConfig shapes one live stream client (RunWatch): a long-poll loop
// over GET /v1/stream that survives coordinator crashes and its own
// disconnects by resuming from the last acked cursor. The bytes it hands
// OnChunk, concatenated, are always a byte-prefix of the campaign's
// canonical records.jsonl.
type WatchConfig struct {
	// URL is the coordinator's base URL (e.g. http://127.0.0.1:8777).
	URL string
	// Cursor resumes a previous watch ("" = the stream's start). Cursors
	// are minted by the coordinator and carry the campaign identity; a
	// cursor from a different campaign is rejected with 409.
	Cursor string
	// OnChunk receives each fully-read chunk with the cursor that acks it
	// and whether the stream is complete. Returning an error stops the
	// watch. Chunks arrive in order with no gaps, overlaps or rewrites.
	OnChunk func(chunk []byte, cursor string, complete bool) error
	// Name identifies the client in logs and seeds its retry jitter
	// (default: "watch").
	Name string
	// Client is the HTTP client (nil: a fresh client; long-poll requests
	// get per-request deadlines, so no global timeout is set).
	Client *http.Client
	// Wait is the long-poll window requested per poll (0: 5s; the server
	// caps it at its StreamPollMax).
	Wait time.Duration
	// ChunkBytes asks the server to cap chunks below its default (0: the
	// server's StreamChunkBytes).
	ChunkBytes int
	// RetryBase and RetryMax bound the jittered exponential backoff on
	// transport errors and 5xx (0: 100ms / 5s). A Retry-After header —
	// admission control or a supervised restart in progress — overrides
	// the backoff with the server's own hint.
	RetryBase, RetryMax time.Duration
	// AttemptBudget caps total failed polls over the watch's lifetime
	// (0: 100). Success resets nothing: the budget is cumulative, so a
	// flapping coordinator eventually surfaces as an error instead of
	// retrying forever.
	AttemptBudget int
	// Injector fires the seeded fault schedule of chaos runs (nil: no
	// faults).
	Injector *faultinject.Injector
	// StallFor is the injected stalled-reader duration (0: 2x the server
	// write deadline is a good chaos choice; default 1s).
	StallFor time.Duration
	// Logf, if non-nil, receives one line per watch event.
	Logf func(format string, args ...any)
}

// WatchStats summarizes a watch.
type WatchStats struct {
	// Bytes is the total acked stream bytes delivered to OnChunk.
	Bytes int64
	// Polls counts successful stream responses (200 or 204); Retries
	// counts failed attempts that consumed retry budget; Reconnects
	// counts connections deliberately or accidentally severed mid-chunk
	// and resumed from the acked cursor.
	Polls, Retries, Reconnects int
	// Cursor is the final resume cursor — hand it to a future watch to
	// continue exactly after the last acked byte.
	Cursor string
	// Complete reports that the stream reached the merged end.
	Complete bool
}

// RunWatch follows a campaign's live result stream until it completes,
// the context is cancelled, OnChunk fails, the attempt budget runs out,
// or the coordinator rejects the cursor (4xx — permanent). Transient
// failures — transport errors, 5xx, admission-control 503s — retry with
// jittered exponential backoff, honoring Retry-After when the server
// sends one. A chunk counts as delivered only after its body was read in
// full; a truncated body (disconnect mid-chunk) is discarded and re-read
// from the same cursor, so the delivered stream never skips or repeats.
func RunWatch(ctx context.Context, cfg WatchConfig) (WatchStats, error) {
	if cfg.Name == "" {
		cfg.Name = "watch"
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.Wait <= 0 {
		cfg.Wait = 5 * time.Second
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 100 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 5 * time.Second
	}
	if cfg.AttemptBudget <= 0 {
		cfg.AttemptBudget = 100
	}
	if cfg.StallFor <= 0 {
		cfg.StallFor = time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	h := fnv.New64a()
	io.WriteString(h, cfg.Name)
	w := &watchLoop{cfg: cfg, jitter: rng.NewStream(h.Sum64())}
	w.stats.Cursor = cfg.Cursor
	return w.run(ctx)
}

// watchLoop is the running state of one RunWatch call.
type watchLoop struct {
	cfg      WatchConfig
	jitter   rng.Stream
	stats    WatchStats
	failures int
}

// run is the poll loop.
func (w *watchLoop) run(ctx context.Context) (WatchStats, error) {
	cursor := w.cfg.Cursor
	for {
		if err := ctx.Err(); err != nil {
			return w.stats, err
		}
		chunk, next, complete, err := w.poll(ctx, cursor)
		switch {
		case err == nil:
			w.stats.Polls++
			if len(chunk) > 0 {
				if cbErr := w.cfg.OnChunk(chunk, next, complete); cbErr != nil {
					w.stats.Cursor = cursor
					return w.stats, cbErr
				}
				w.stats.Bytes += int64(len(chunk))
				cursor = next
				w.stats.Cursor = next
			}
			if complete {
				w.stats.Complete = true
				return w.stats, nil
			}
		case errors.Is(err, errReconnect):
			// A severed or deliberately dropped connection: resume from
			// the unacked cursor, immediately — reconnects are not
			// failures, the cursor makes them exact.
			w.stats.Reconnects++
		default:
			var perm errPermanent
			if errors.As(err, &perm) || ctx.Err() != nil {
				w.stats.Cursor = cursor
				return w.stats, err
			}
			w.failures++
			w.stats.Retries++
			if w.failures >= w.cfg.AttemptBudget {
				w.stats.Cursor = cursor
				return w.stats, fmt.Errorf("coord: watch giving up after %d failed polls: %w", w.failures, err)
			}
			delay, hinted := retryAfter(err)
			if !hinted {
				delay = backoffDelay(&w.jitter, w.cfg.RetryBase, w.cfg.RetryMax, w.failures-1)
			}
			w.cfg.Logf("%s: poll failed (%d/%d): %v; retrying in %v", w.cfg.Name, w.failures, w.cfg.AttemptBudget, err, delay)
			select {
			case <-ctx.Done():
				w.stats.Cursor = cursor
				return w.stats, ctx.Err()
			case <-time.After(delay):
			}
		}
	}
}

// poll performs one long-poll request. It returns the fully-read chunk
// (nil on an empty poll), the cursor acking it, and completeness.
// errReconnect signals a mid-chunk disconnect to resume immediately;
// errPermanent wraps 4xx rejections retrying cannot fix.
func (w *watchLoop) poll(ctx context.Context, cursor string) (chunk []byte, next string, complete bool, _ error) {
	q := url.Values{}
	if cursor != "" {
		q.Set("cursor", cursor)
	}
	q.Set("wait", w.cfg.Wait.String())
	if w.cfg.ChunkBytes > 0 {
		q.Set("max", strconv.Itoa(w.cfg.ChunkBytes))
	}
	// The request deadline leaves the server's poll window plus slack for
	// the chunk transfer; a hung coordinator cannot hang the watch.
	rctx, cancel := context.WithTimeout(ctx, w.cfg.Wait+15*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, w.cfg.URL+"/v1/stream?"+q.Encode(), nil)
	if err != nil {
		return nil, "", false, errPermanent{err}
	}
	res, err := w.cfg.Client.Do(req)
	if err != nil {
		return nil, "", false, err
	}
	defer res.Body.Close()
	switch {
	case res.StatusCode == http.StatusOK, res.StatusCode == http.StatusNoContent:
	case res.StatusCode == http.StatusTooManyRequests || res.StatusCode >= 500:
		return nil, "", false, httpError(res)
	default:
		return nil, "", false, errPermanent{httpError(res)}
	}
	next = res.Header.Get(HeaderCursor)
	complete = res.Header.Get(HeaderComplete) == "true"
	if res.StatusCode == http.StatusNoContent {
		return nil, next, complete, nil
	}
	switch w.cfg.Injector.Fire(faultinject.StreamClient) {
	case faultinject.Crash:
		// Disconnect mid-chunk: sever the connection without reading the
		// body; the chunk is never acked, the reconnect re-reads it.
		w.cfg.Logf("%s: injected disconnect mid-chunk", w.cfg.Name)
		res.Body.Close()
		return nil, "", false, errReconnect
	case faultinject.Stall:
		// A stalled reader: stop consuming the response. The coordinator's
		// write deadline evicts us; the read below then fails and the
		// reconnect resumes from the unacked cursor.
		w.cfg.Logf("%s: injected %v reader stall", w.cfg.Name, w.cfg.StallFor)
		select {
		case <-time.After(w.cfg.StallFor):
		case <-ctx.Done():
			return nil, "", false, ctx.Err()
		}
	case faultinject.Duplicate:
		// One pulse of a reconnect storm: drop and re-dial immediately.
		w.cfg.Logf("%s: injected reconnect-storm pulse", w.cfg.Name)
		res.Body.Close()
		return nil, "", false, errReconnect
	}
	body, err := io.ReadAll(res.Body)
	if err != nil {
		// Truncated mid-chunk (the server dropped us, evicted us, or
		// crashed). Nothing was acked; resume from the same cursor.
		return nil, "", false, errReconnect
	}
	if cl := res.ContentLength; cl >= 0 && int64(len(body)) != cl {
		return nil, "", false, errReconnect
	}
	return body, next, complete, nil
}
