package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strings"
	"time"

	"ncg/internal/campaign"
	"ncg/internal/faultinject"
	"ncg/internal/rng"
)

// WorkerConfig shapes one worker process's campaign loop.
type WorkerConfig struct {
	// URL is the coordinator's base URL (e.g. http://127.0.0.1:8080).
	URL string
	// Campaign must resolve to the same campaign the coordinator serves;
	// the fingerprint handshake enforces it.
	Campaign campaign.Campaign
	// Name identifies the worker in leases and logs (default: "worker").
	Name string
	// Client is the HTTP client (nil: a client with a 30s timeout).
	Client *http.Client
	// Poll is the idle wait when the coordinator has nothing grantable
	// (0: the coordinator's suggested wait, capped by 1s).
	Poll time.Duration
	// RetryBase and RetryMax bound the jittered exponential backoff on
	// coordinator errors (0: 100ms / 5s).
	RetryBase, RetryMax time.Duration
	// MaxRetries is the consecutive-failure budget before the worker
	// gives up — graceful degradation: one worker dying never takes the
	// campaign down (0: 30).
	MaxRetries int
	// Injector fires the seeded fault schedule of chaos runs (nil: no
	// faults).
	Injector *faultinject.Injector
	// StallFor is the injected-stall duration (0: 3x the lease TTL).
	StallFor time.Duration
	// Logf, if non-nil, receives one line per worker event.
	Logf func(format string, args ...any)
}

// WorkerStats summarizes a worker's contribution.
type WorkerStats struct {
	// Shards and Records count completed uploads.
	Shards, Records int
	// Retries counts coordinator calls that needed a backoff retry.
	Retries int
	// Drained reports a graceful shutdown: the worker finished its
	// current instance, released its lease and exited on cancellation.
	Drained bool
}

// ErrInjectedCrash is returned by RunWorker when the fault schedule kills
// the worker mid-shard: the lease is deliberately not released, so the
// coordinator must recover it by expiry.
var ErrInjectedCrash = errors.New("coord: injected worker crash")

// errPermanent wraps coordinator rejections that retrying cannot fix
// (fingerprint mismatch, malformed request).
type errPermanent struct{ err error }

func (e errPermanent) Error() string { return e.err.Error() }
func (e errPermanent) Unwrap() error { return e.err }

// RunWorker leases shards from the coordinator until the campaign
// completes, the context is cancelled (graceful drain: the current
// instance finishes, the lease is released) or the retry budget is
// exhausted. Every coordinator interaction retries with jittered
// exponential backoff; shard execution is campaign.RunShard, so an
// upload is byte-identical no matter which worker runs it or how often.
func RunWorker(ctx context.Context, cfg WorkerConfig) (WorkerStats, error) {
	if cfg.Name == "" {
		cfg.Name = "worker"
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 100 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 5 * time.Second
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 30
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	camp, err := campaign.Resolve(cfg.Campaign, campaign.Options{})
	if err != nil {
		return WorkerStats{}, err
	}
	w := &workerLoop{
		cfg:  cfg,
		camp: camp,
		fp:   campaign.Fingerprint(camp),
	}
	// The jitter stream is seeded from the worker's name so backoff
	// schedules are reproducible per worker yet decorrelated across a
	// fleet.
	h := fnv.New64a()
	io.WriteString(h, cfg.Name)
	w.jitter = rng.NewStream(h.Sum64())
	return w.run(ctx)
}

// workerLoop is the running state of one RunWorker call.
type workerLoop struct {
	cfg    WorkerConfig
	camp   campaign.Campaign
	fp     string
	jitter rng.Stream
	stats  WorkerStats
}

// backoff sleeps the jittered exponential delay of the attempt-th
// consecutive failure, honoring cancellation.
func (w *workerLoop) backoff(ctx context.Context, attempt int) error {
	d := w.cfg.RetryBase << uint(attempt)
	if d > w.cfg.RetryMax || d <= 0 {
		d = w.cfg.RetryMax
	}
	// Full jitter in [d/2, d): desynchronizes a fleet hammering a
	// restarting coordinator.
	d = d/2 + time.Duration(w.jitter.Next()%uint64(d/2+1))
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(d):
		return nil
	}
}

// call POSTs a JSON request and decodes the JSON response. 4xx responses
// are permanent; transport failures and 5xx are retryable.
func (w *workerLoop) call(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return errPermanent{err}
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.URL+path, bytes.NewReader(body))
	if err != nil {
		return errPermanent{err}
	}
	hr.Header.Set("Content-Type", "application/json")
	res, err := w.cfg.Client.Do(hr)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(res.Body, 4096))
		err := fmt.Errorf("coord: %s: %s: %s", path, res.Status, strings.TrimSpace(string(msg)))
		if res.StatusCode >= 400 && res.StatusCode < 500 {
			return errPermanent{err}
		}
		return err
	}
	return json.NewDecoder(res.Body).Decode(resp)
}

// callRetry wraps call with the backoff/retry budget.
func (w *workerLoop) callRetry(ctx context.Context, path string, req, resp any) error {
	for attempt := 0; ; attempt++ {
		err := w.call(ctx, path, req, resp)
		if err == nil {
			return nil
		}
		var perm errPermanent
		if errors.As(err, &perm) || ctx.Err() != nil {
			return err
		}
		if attempt+1 >= w.cfg.MaxRetries {
			return fmt.Errorf("coord: giving up on %s after %d attempts: %w", path, attempt+1, err)
		}
		w.stats.Retries++
		w.cfg.Logf("%s: %s failed (attempt %d): %v; backing off", w.cfg.Name, path, attempt+1, err)
		if err := w.backoff(ctx, attempt); err != nil {
			return err
		}
	}
}

func (w *workerLoop) run(ctx context.Context) (WorkerStats, error) {
	for {
		if ctx.Err() != nil {
			w.stats.Drained = true
			return w.stats, ctx.Err()
		}
		var lease LeaseResponse
		err := w.callRetry(ctx, "/v1/lease", LeaseRequest{Worker: w.cfg.Name, Fingerprint: w.fp}, &lease)
		if err != nil {
			if ctx.Err() != nil {
				w.stats.Drained = true
			}
			return w.stats, err
		}
		switch {
		case lease.Done:
			w.cfg.Logf("%s: campaign complete", w.cfg.Name)
			return w.stats, nil
		case lease.Wait:
			wait := w.cfg.Poll
			if wait <= 0 {
				wait = time.Duration(lease.WaitMs) * time.Millisecond
				if wait <= 0 || wait > time.Second {
					wait = time.Second
				}
			}
			select {
			case <-ctx.Done():
				w.stats.Drained = true
				return w.stats, ctx.Err()
			case <-time.After(wait):
			}
			continue
		}
		done, err := w.runLease(ctx, lease)
		if err != nil {
			if errors.Is(err, ErrInjectedCrash) {
				return w.stats, err
			}
			if ctx.Err() != nil {
				// Graceful drain: the shard stopped at an instance
				// boundary; give the lease back so the shard re-leases
				// immediately instead of waiting out the TTL.
				w.release(lease)
				w.stats.Drained = true
				return w.stats, ctx.Err()
			}
			w.cfg.Logf("%s: shard %s failed: %v", w.cfg.Name, lease.Shard, err)
			w.release(lease)
			return w.stats, err
		}
		if done {
			// This completion was the campaign's last shard: exit on the
			// complete reply instead of polling /v1/lease again — the
			// coordinator may already have merged and shut down.
			w.cfg.Logf("%s: campaign complete", w.cfg.Name)
			return w.stats, nil
		}
	}
}

// release gives a lease back, best-effort: the parent context may already
// be cancelled, so it uses a short background deadline. An unreachable
// coordinator is fine — the lease expires on its own.
func (w *workerLoop) release(lease LeaseResponse) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	var resp struct{}
	if err := w.call(ctx, "/v1/release", ReleaseRequest{Lease: lease.Lease}, &resp); err != nil {
		w.cfg.Logf("%s: release %s failed (lease will expire): %v", w.cfg.Name, lease.Lease, err)
	}
}

// runLease executes one granted shard under a heartbeat loop and uploads
// the records. done reports whether the completion was the campaign's
// last shard (CompleteResponse.Done).
func (w *workerLoop) runLease(ctx context.Context, lease LeaseResponse) (done bool, _ error) {
	ttl := time.Duration(lease.TTLMs) * time.Millisecond
	hbCtx, hbStop := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		w.heartbeats(hbCtx, lease, ttl)
	}()
	recs, err := campaign.RunShard(ctx, w.camp, lease.Shard, func(inst int) error {
		switch w.cfg.Injector.Fire(faultinject.WorkerInstance) {
		case faultinject.Crash:
			// A dead worker: the shard is abandoned with its lease
			// unreleased; only expiry can free it.
			w.cfg.Logf("%s: injected crash at %s instance %d", w.cfg.Name, lease.Shard, inst)
			return ErrInjectedCrash
		case faultinject.Stall:
			stall := w.cfg.StallFor
			if stall <= 0 {
				stall = 3 * ttl
			}
			w.cfg.Logf("%s: injected %v stall at %s instance %d", w.cfg.Name, stall, lease.Shard, inst)
			select {
			case <-time.After(stall):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		return nil
	})
	hbStop()
	<-hbDone
	if err != nil {
		return false, err
	}
	data, err := campaign.MarshalRecords(recs)
	if err != nil {
		return false, err
	}
	var resp CompleteResponse
	if err := w.callRetry(ctx, "/v1/complete", CompleteRequest{
		Lease: lease.Lease, Worker: w.cfg.Name, Index: lease.Index, Records: string(data),
	}, &resp); err != nil {
		return false, err
	}
	w.stats.Shards++
	w.stats.Records += len(recs)
	w.cfg.Logf("%s: completed %s (%d records)", w.cfg.Name, lease.Shard, len(recs))
	return resp.Done, nil
}

// heartbeats renews the lease every TTL/3 until stopped. A dropped
// heartbeat skips one renewal; an injected heartbeat crash silences the
// loop entirely, so the lease expires under a live worker — whose
// eventual completion must still be accepted idempotently.
func (w *workerLoop) heartbeats(ctx context.Context, lease LeaseResponse, ttl time.Duration) {
	interval := ttl / 3
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		switch w.cfg.Injector.Fire(faultinject.Heartbeat) {
		case faultinject.Drop:
			w.cfg.Logf("%s: injected heartbeat drop for %s", w.cfg.Name, lease.Lease)
			continue
		case faultinject.Crash:
			w.cfg.Logf("%s: injected heartbeat silence for %s", w.cfg.Name, lease.Lease)
			return
		}
		var resp HeartbeatResponse
		if err := w.call(ctx, "/v1/heartbeat", HeartbeatRequest{Lease: lease.Lease}, &resp); err != nil {
			w.cfg.Logf("%s: heartbeat for %s failed: %v", w.cfg.Name, lease.Lease, err)
			continue
		}
		if !resp.OK {
			w.cfg.Logf("%s: lease %s expired under us; finishing anyway (completion is idempotent)", w.cfg.Name, lease.Lease)
			return
		}
	}
}
