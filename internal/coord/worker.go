package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"ncg/internal/campaign"
	"ncg/internal/faultinject"
	"ncg/internal/rng"
)

// WorkerConfig shapes one worker process's campaign loop.
type WorkerConfig struct {
	// URL is the coordinator's base URL (e.g. http://127.0.0.1:8080).
	URL string
	// Campaign must resolve to the same campaign the coordinator serves;
	// the fingerprint handshake enforces it.
	Campaign campaign.Campaign
	// Name identifies the worker in leases and logs (default: "worker").
	Name string
	// Client is the HTTP client (nil: a client with a 30s timeout).
	Client *http.Client
	// Poll is the idle wait when the coordinator has nothing grantable
	// (0: the coordinator's suggested wait, capped by 1s).
	Poll time.Duration
	// RetryBase and RetryMax bound the jittered exponential backoff on
	// coordinator errors (0: 100ms / 5s). When the coordinator sends a
	// Retry-After hint (admission control, supervised restart in
	// progress), the hint replaces the backoff.
	RetryBase, RetryMax time.Duration
	// MaxRetries is the consecutive-failure budget of one call before the
	// worker gives up — graceful degradation: one worker dying never
	// takes the campaign down (0: 30).
	MaxRetries int
	// AttemptBudget caps total failed coordinator calls over the worker's
	// lifetime (0: 1000). Unlike MaxRetries it never resets, so a worker
	// bouncing against a flapping coordinator eventually exits instead of
	// retrying forever. Permanent rejections (fingerprint mismatch,
	// malformed requests — any non-429 4xx) fail fast without consuming
	// it.
	AttemptBudget int
	// Injector fires the seeded fault schedule of chaos runs (nil: no
	// faults).
	Injector *faultinject.Injector
	// StallFor is the injected-stall duration (0: 3x the lease TTL).
	StallFor time.Duration
	// Logf, if non-nil, receives one line per worker event.
	Logf func(format string, args ...any)
}

// WorkerStats summarizes a worker's contribution.
type WorkerStats struct {
	// Shards and Records count completed uploads.
	Shards, Records int
	// Retries counts coordinator calls that needed a backoff retry.
	Retries int
	// Drained reports a graceful shutdown: the worker finished its
	// current instance, released its lease and exited on cancellation.
	Drained bool
}

// ErrInjectedCrash is returned by RunWorker when the fault schedule kills
// the worker mid-shard: the lease is deliberately not released, so the
// coordinator must recover it by expiry.
var ErrInjectedCrash = errors.New("coord: injected worker crash")

// errPermanent wraps coordinator rejections that retrying cannot fix
// (fingerprint mismatch, malformed request).
type errPermanent struct{ err error }

func (e errPermanent) Error() string { return e.err.Error() }
func (e errPermanent) Unwrap() error { return e.err }

// errHTTP is a non-2xx coordinator reply, keeping the status and any
// Retry-After hint so retry loops can classify and pace themselves.
type errHTTP struct {
	status int
	after  time.Duration
	msg    string
}

func (e errHTTP) Error() string { return e.msg }

// httpError drains a non-2xx response into an errHTTP.
func httpError(res *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(res.Body, 4096))
	e := errHTTP{
		status: res.StatusCode,
		msg:    fmt.Sprintf("coord: %s: %s: %s", res.Request.URL.Path, res.Status, strings.TrimSpace(string(msg))),
	}
	if s := res.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
			e.after = time.Duration(secs) * time.Second
		}
	}
	return e
}

// retryAfter extracts a server-sent Retry-After hint from err. The hint
// is capped at 30s — a confused server must not park a client forever.
func retryAfter(err error) (time.Duration, bool) {
	var he errHTTP
	if !errors.As(err, &he) || he.after <= 0 {
		return 0, false
	}
	if he.after > 30*time.Second {
		return 30 * time.Second, true
	}
	return he.after, true
}

// backoffDelay is the jittered exponential delay of the attempt-th
// consecutive failure: full jitter in [d/2, d) desynchronizes a fleet
// hammering a restarting coordinator.
func backoffDelay(jitter *rng.Stream, base, max time.Duration, attempt int) time.Duration {
	d := base << uint(attempt)
	if d > max || d <= 0 {
		d = max
	}
	return d/2 + time.Duration(jitter.Next()%uint64(d/2+1))
}

// RunWorker leases shards from the coordinator until the campaign
// completes, the context is cancelled (graceful drain: the current
// instance finishes, the lease is released) or the retry budget is
// exhausted. Every coordinator interaction retries with jittered
// exponential backoff; shard execution is campaign.RunShard, so an
// upload is byte-identical no matter which worker runs it or how often.
func RunWorker(ctx context.Context, cfg WorkerConfig) (WorkerStats, error) {
	if cfg.Name == "" {
		cfg.Name = "worker"
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 100 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 5 * time.Second
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 30
	}
	if cfg.AttemptBudget <= 0 {
		cfg.AttemptBudget = 1000
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	camp, err := campaign.Resolve(cfg.Campaign, campaign.Options{})
	if err != nil {
		return WorkerStats{}, err
	}
	w := &workerLoop{
		cfg:  cfg,
		camp: camp,
		fp:   campaign.Fingerprint(camp),
	}
	// The jitter stream is seeded from the worker's name so backoff
	// schedules are reproducible per worker yet decorrelated across a
	// fleet.
	h := fnv.New64a()
	io.WriteString(h, cfg.Name)
	w.jitter = rng.NewStream(h.Sum64())
	return w.run(ctx)
}

// workerLoop is the running state of one RunWorker call.
type workerLoop struct {
	cfg      WorkerConfig
	camp     campaign.Campaign
	fp       string
	jitter   rng.Stream
	stats    WorkerStats
	attempts int // lifetime failed calls, charged against AttemptBudget
}

// call POSTs a JSON request and decodes the JSON response. Non-429 4xx
// responses are permanent (a fingerprint mismatch must fail fast, not
// back off); transport failures, 5xx and 429 are transient.
func (w *workerLoop) call(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return errPermanent{err}
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.URL+path, bytes.NewReader(body))
	if err != nil {
		return errPermanent{err}
	}
	hr.Header.Set("Content-Type", "application/json")
	res, err := w.cfg.Client.Do(hr)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		err := httpError(res)
		if res.StatusCode >= 400 && res.StatusCode < 500 && res.StatusCode != http.StatusTooManyRequests {
			return errPermanent{err}
		}
		return err
	}
	return json.NewDecoder(res.Body).Decode(resp)
}

// callRetry wraps call with the backoff/retry budgets: MaxRetries bounds
// consecutive failures of this call, AttemptBudget bounds failures over
// the worker's lifetime, and a Retry-After hint from admission control
// replaces the computed backoff.
func (w *workerLoop) callRetry(ctx context.Context, path string, req, resp any) error {
	for attempt := 0; ; attempt++ {
		err := w.call(ctx, path, req, resp)
		if err == nil {
			return nil
		}
		var perm errPermanent
		if errors.As(err, &perm) || ctx.Err() != nil {
			return err
		}
		if attempt+1 >= w.cfg.MaxRetries {
			return fmt.Errorf("coord: giving up on %s after %d attempts: %w", path, attempt+1, err)
		}
		w.attempts++
		if w.attempts >= w.cfg.AttemptBudget {
			return fmt.Errorf("coord: worker attempt budget (%d) exhausted at %s: %w", w.cfg.AttemptBudget, path, err)
		}
		w.stats.Retries++
		d, hinted := retryAfter(err)
		if !hinted {
			d = backoffDelay(&w.jitter, w.cfg.RetryBase, w.cfg.RetryMax, attempt)
			w.cfg.Logf("%s: %s failed (attempt %d): %v; backing off %v", w.cfg.Name, path, attempt+1, err, d)
		} else {
			w.cfg.Logf("%s: %s refused (attempt %d): %v; honoring Retry-After %v", w.cfg.Name, path, attempt+1, err, d)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(d):
		}
	}
}

func (w *workerLoop) run(ctx context.Context) (WorkerStats, error) {
	for {
		if ctx.Err() != nil {
			w.stats.Drained = true
			return w.stats, ctx.Err()
		}
		var lease LeaseResponse
		err := w.callRetry(ctx, "/v1/lease", LeaseRequest{Worker: w.cfg.Name, Fingerprint: w.fp}, &lease)
		if err != nil {
			if ctx.Err() != nil {
				w.stats.Drained = true
			}
			return w.stats, err
		}
		switch {
		case lease.Done:
			w.cfg.Logf("%s: campaign complete", w.cfg.Name)
			return w.stats, nil
		case lease.Wait:
			wait := w.cfg.Poll
			if wait <= 0 {
				wait = time.Duration(lease.WaitMs) * time.Millisecond
				if wait <= 0 || wait > time.Second {
					wait = time.Second
				}
			}
			select {
			case <-ctx.Done():
				w.stats.Drained = true
				return w.stats, ctx.Err()
			case <-time.After(wait):
			}
			continue
		}
		done, err := w.runLease(ctx, lease)
		if err != nil {
			if errors.Is(err, ErrInjectedCrash) {
				return w.stats, err
			}
			if ctx.Err() != nil {
				// Graceful drain: the shard stopped at an instance
				// boundary; give the lease back so the shard re-leases
				// immediately instead of waiting out the TTL.
				w.release(lease)
				w.stats.Drained = true
				return w.stats, ctx.Err()
			}
			w.cfg.Logf("%s: shard %s failed: %v", w.cfg.Name, lease.Shard, err)
			w.release(lease)
			return w.stats, err
		}
		if done {
			// This completion was the campaign's last shard: exit on the
			// complete reply instead of polling /v1/lease again — the
			// coordinator may already have merged and shut down.
			w.cfg.Logf("%s: campaign complete", w.cfg.Name)
			return w.stats, nil
		}
	}
}

// release gives a lease back, best-effort: the parent context may already
// be cancelled, so it uses a short background deadline. An unreachable
// coordinator is fine — the lease expires on its own.
func (w *workerLoop) release(lease LeaseResponse) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	var resp struct{}
	if err := w.call(ctx, "/v1/release", ReleaseRequest{Lease: lease.Lease}, &resp); err != nil {
		w.cfg.Logf("%s: release %s failed (lease will expire): %v", w.cfg.Name, lease.Lease, err)
	}
}

// runLease executes one granted shard under a heartbeat loop and uploads
// the records. done reports whether the completion was the campaign's
// last shard (CompleteResponse.Done).
func (w *workerLoop) runLease(ctx context.Context, lease LeaseResponse) (done bool, _ error) {
	ttl := time.Duration(lease.TTLMs) * time.Millisecond
	hbCtx, hbStop := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		w.heartbeats(hbCtx, lease, ttl)
	}()
	recs, err := campaign.RunShard(ctx, w.camp, lease.Shard, func(inst int) error {
		switch w.cfg.Injector.Fire(faultinject.WorkerInstance) {
		case faultinject.Crash:
			// A dead worker: the shard is abandoned with its lease
			// unreleased; only expiry can free it.
			w.cfg.Logf("%s: injected crash at %s instance %d", w.cfg.Name, lease.Shard, inst)
			return ErrInjectedCrash
		case faultinject.Stall:
			stall := w.cfg.StallFor
			if stall <= 0 {
				stall = 3 * ttl
			}
			w.cfg.Logf("%s: injected %v stall at %s instance %d", w.cfg.Name, stall, lease.Shard, inst)
			select {
			case <-time.After(stall):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		return nil
	})
	hbStop()
	<-hbDone
	if err != nil {
		return false, err
	}
	data, err := campaign.MarshalRecords(recs)
	if err != nil {
		return false, err
	}
	var resp CompleteResponse
	if err := w.callRetry(ctx, "/v1/complete", CompleteRequest{
		Lease: lease.Lease, Worker: w.cfg.Name, Index: lease.Index, Records: string(data),
	}, &resp); err != nil {
		return false, err
	}
	w.stats.Shards++
	w.stats.Records += len(recs)
	w.cfg.Logf("%s: completed %s (%d records)", w.cfg.Name, lease.Shard, len(recs))
	return resp.Done, nil
}

// heartbeats renews the lease every TTL/3 until stopped. A dropped
// heartbeat skips one renewal; an injected heartbeat crash silences the
// loop entirely, so the lease expires under a live worker — whose
// eventual completion must still be accepted idempotently.
func (w *workerLoop) heartbeats(ctx context.Context, lease LeaseResponse, ttl time.Duration) {
	interval := ttl / 3
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		switch w.cfg.Injector.Fire(faultinject.Heartbeat) {
		case faultinject.Drop:
			w.cfg.Logf("%s: injected heartbeat drop for %s", w.cfg.Name, lease.Lease)
			continue
		case faultinject.Crash:
			w.cfg.Logf("%s: injected heartbeat silence for %s", w.cfg.Name, lease.Lease)
			return
		}
		var resp HeartbeatResponse
		if err := w.call(ctx, "/v1/heartbeat", HeartbeatRequest{Lease: lease.Lease}, &resp); err != nil {
			w.cfg.Logf("%s: heartbeat for %s failed: %v", w.cfg.Name, lease.Lease, err)
			continue
		}
		if !resp.OK {
			w.cfg.Logf("%s: lease %s expired under us; finishing anyway (completion is idempotent)", w.cfg.Name, lease.Lease)
			return
		}
	}
}
