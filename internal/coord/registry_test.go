package coord

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// twoCampaignRegistry hosts two independent campaigns ("alpha", "beta")
// behind one server.
func twoCampaignRegistry(t *testing.T) (*Registry, *httptest.Server) {
	t.Helper()
	reg := NewRegistry(RegistryConfig{Dir: t.TempDir(), Logf: t.Logf})
	for _, name := range []string{"alpha", "beta"} {
		if _, err := reg.Add(name, Config{Campaign: testCampaign(), ShardSize: 3, LeaseTTL: time.Second}); err != nil {
			t.Fatalf("Add(%s): %v", name, err)
		}
	}
	t.Cleanup(func() { reg.Close() })
	srv := httptest.NewServer(reg.Handler())
	t.Cleanup(srv.Close)
	return reg, srv
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer res.Body.Close()
	body, _ := io.ReadAll(res.Body)
	if v != nil {
		if err := json.Unmarshal(body, v); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", url, body, err)
		}
	}
	return res.StatusCode
}

// TestRegistryCrashIsolation is the multi-campaign contract: one
// campaign's crash turns only its own routes into 503 + Retry-After —
// the sibling keeps serving, /healthz stays green (the process is fine),
// /readyz drops out naming the down campaign, and a manual Restart
// brings everything back.
func TestRegistryCrashIsolation(t *testing.T) {
	reg, srv := twoCampaignRegistry(t)

	// Run alpha to completion so its stream has bytes, then crash it.
	runWorkers(t, srv.URL+"/c/alpha", 2)
	a := reg.Get("alpha")
	<-a.Done()
	a.mu.Lock()
	a.crash("test")
	a.mu.Unlock()
	// Wait for the supervisor to mark the campaign down (no AutoRestart).
	deadline := time.Now().Add(5 * time.Second)
	for reg.Get("alpha") != nil {
		if time.Now().After(deadline) {
			t.Fatalf("supervisor never marked alpha down")
		}
		time.Sleep(5 * time.Millisecond)
	}

	res, err := http.Get(srv.URL + "/c/alpha/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable || res.Header.Get("Retry-After") == "" {
		t.Fatalf("crashed campaign route: %s, Retry-After %q; want 503 with a hint",
			res.Status, res.Header.Get("Retry-After"))
	}
	var st Status
	if code := getJSON(t, srv.URL+"/c/beta/v1/status", &st); code != http.StatusOK {
		t.Fatalf("sibling campaign status: %d, want 200", code)
	}
	if code := getJSON(t, srv.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz went red over one campaign crash")
	}
	var ready struct {
		Ready bool     `json:"ready"`
		Down  []string `json:"down"`
	}
	if code := getJSON(t, srv.URL+"/readyz", &ready); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz = %d with a campaign down, want 503", code)
	}
	if ready.Ready || len(ready.Down) != 1 || ready.Down[0] != "alpha" {
		t.Fatalf("readyz body %+v, want down=[alpha]", ready)
	}
	var infos []CampaignInfo
	getJSON(t, srv.URL+"/v1/campaigns", &infos)
	if len(infos) != 2 || infos[0].Name != "alpha" || infos[0].Live || !infos[1].Live {
		t.Fatalf("campaign listing %+v, want alpha down / beta live", infos)
	}

	// The sibling still completes while alpha is down, via its own routes.
	runWorkers(t, srv.URL+"/c/beta", 2)
	<-reg.Get("beta").Done()

	// Restart recovers alpha from its own directory with state intact.
	if _, err := reg.Restart("alpha"); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	if code := getJSON(t, srv.URL+"/readyz", &ready); code != http.StatusOK || !ready.Ready {
		t.Fatalf("readyz after restart: %d %+v, want ready", code, ready)
	}
	res, err = http.Get(srv.URL + "/c/alpha/v1/stream")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if want := singleProcessBytes(t); !bytes.Equal(body, want) {
		t.Fatalf("restarted alpha stream: %d bytes, want %d", len(body), len(want))
	}
	if reg.Restarts("alpha") != 1 {
		t.Fatalf("Restarts(alpha) = %d, want 1", reg.Restarts("alpha"))
	}
}

// TestRegistryAddFailureIsolation pins open-failure isolation: a campaign
// whose directory holds a foreign manifest fails Add without hosting
// anything, and siblings are untouched.
func TestRegistryAddFailureIsolation(t *testing.T) {
	reg, srv := twoCampaignRegistry(t)

	// Seed a directory with a different campaign's manifest.
	dir := t.TempDir()
	other := testCampaign()
	other.Seed = 99
	c, err := Open(Config{Campaign: other, Dir: dir, ShardSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := reg.Add("gamma", Config{Campaign: testCampaign(), Dir: dir, ShardSize: 3}); err == nil {
		t.Fatalf("Add accepted a directory holding a foreign campaign")
	}
	if names := reg.Names(); len(names) != 2 {
		t.Fatalf("failed Add left residue: %v", names)
	}
	if code := getJSON(t, srv.URL+"/readyz", nil); code != http.StatusOK {
		t.Fatalf("readyz = %d after an isolated Add failure, want 200", code)
	}
	res, _ := http.Get(srv.URL + "/c/gamma/v1/status")
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusNotFound {
		t.Fatalf("unhosted campaign route: %d, want 404", res.StatusCode)
	}
}

// TestRegistryAutoRestart lets the supervisor recover a crashed campaign
// on its own: after the restart delay the campaign is live again, its
// state recovered from the manifest.
func TestRegistryAutoRestart(t *testing.T) {
	reg := NewRegistry(RegistryConfig{
		Dir: t.TempDir(), AutoRestart: 10 * time.Millisecond, Logf: t.Logf,
	})
	defer reg.Close()
	c, err := reg.Add("hunt", Config{Campaign: testCampaign(), ShardSize: 3, LeaseTTL: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	runWorkers(t, srv.URL, 2)
	<-c.Done()
	c.mu.Lock()
	c.crash("test")
	c.mu.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for reg.Restarts("hunt") == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("supervisor never auto-restarted the campaign")
		}
		time.Sleep(5 * time.Millisecond)
	}
	var st Status
	if code := getJSON(t, srv.URL+"/v1/status", &st); code != http.StatusOK || !st.Merged {
		t.Fatalf("auto-restarted campaign: code %d, status %+v; want merged", code, st)
	}
}

// TestRegistryDefaultMount pins the flat-route contract: the first added
// campaign answers /v1/..., and Mount switches it.
func TestRegistryDefaultMount(t *testing.T) {
	reg, srv := twoCampaignRegistry(t)
	var st Status
	getJSON(t, srv.URL+"/v1/status", &st)
	alpha := reg.Get("alpha").Status()
	if st.Fingerprint != alpha.Fingerprint {
		t.Fatalf("flat route does not serve the first campaign")
	}
	// Same campaign config, so distinguish by completing only beta.
	runWorkers(t, srv.URL+"/c/beta", 2)
	<-reg.Get("beta").Done()
	if err := reg.Mount("beta"); err != nil {
		t.Fatalf("Mount: %v", err)
	}
	getJSON(t, srv.URL+"/v1/status", &st)
	if !st.Merged {
		t.Fatalf("flat route still serves alpha after Mount(beta): %+v", st)
	}
	if err := reg.Mount("nope"); err == nil {
		t.Fatalf("Mount accepted an unhosted campaign")
	}
}

// TestRegistryRejectsBadNames bounds hosted names to path-safe tokens.
func TestRegistryRejectsBadNames(t *testing.T) {
	reg := NewRegistry(RegistryConfig{Dir: t.TempDir()})
	defer reg.Close()
	for _, name := range []string{"", ".", "../evil", "a/b", "a b", "-lead"} {
		if _, err := reg.Add(name, Config{Campaign: testCampaign()}); err == nil {
			t.Errorf("Add(%q) accepted a bad name", name)
		}
	}
	// A rejected name must create nothing on disk.
	entries, err := os.ReadDir(reg.cfg.Dir)
	if err == nil && len(entries) != 0 {
		var names []string
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("bad names left directories: %v", names)
	}
}

// TestRegistryStateDirsAreIndependent double-checks the per-campaign
// layout: each hosted campaign owns RegistryConfig.Dir/<name> with its
// own manifest and shard files.
func TestRegistryStateDirsAreIndependent(t *testing.T) {
	reg, srv := twoCampaignRegistry(t)
	runWorkers(t, srv.URL+"/c/alpha", 2)
	<-reg.Get("alpha").Done()
	root := reg.cfg.Dir
	if _, err := os.Stat(filepath.Join(root, "alpha", "records.jsonl")); err != nil {
		t.Fatalf("alpha state dir: %v", err)
	}
	if _, err := os.Stat(filepath.Join(root, "beta", "manifest.jsonl")); err != nil {
		t.Fatalf("beta state dir: %v", err)
	}
	if _, err := os.Stat(filepath.Join(root, "beta", "records.jsonl")); err == nil {
		t.Fatalf("beta has a merged result without ever running: %s", filepath.Join(root, "beta"))
	}
}
