package cli

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
)

// SignalExitCode is the conventional exit status of a run stopped by an
// interrupt (128 + SIGINT), distinguishing "checkpointed and stopped"
// from success (0) and failure (1) for supervisors and shell scripts.
const SignalExitCode = 130

// SignalContext is the graceful-shutdown seam shared by all commands: it
// returns a context cancelled on the first SIGINT or SIGTERM, announcing
// the shutdown on stderr. The long-running spines (campaign, ensemble,
// cycles, dynamics) take the context — or its Done channel — and stop at
// the next clean boundary (instance, trial, level, step), flushing
// whatever checkpoint they keep, so an interrupted run is resumable, never
// torn mid-write. A second signal falls through to Go's default handling
// (immediate death), keeping a hung run killable. Call stop to release
// the signal handler.
func SignalContext(stderr io.Writer, name string) (ctx context.Context, stop context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		select {
		case sig := <-ch:
			if stderr != nil {
				fmt.Fprintf(stderr, "%s: %v — stopping at the next checkpoint (again to kill)\n", name, sig)
			}
			signal.Stop(ch)
			cancel()
		case <-ctx.Done():
			signal.Stop(ch)
		}
	}()
	return ctx, cancel
}
