// Package cli carries the shared scaffolding of the repository's
// command-line tools: a panic-based exit protocol that lets command
// bodies abort from any call depth while keeping main() testable (tests
// call the command's run function in-process and read the exit code).
package cli

import (
	"fmt"
	"io"
)

// exitCode carries the process exit status through panics.
type exitCode int

// App is one command invocation's context: its name (the error prefix),
// usage text and output streams.
type App struct {
	Name   string
	Usage  string
	Stdout io.Writer
	Stderr io.Writer
}

// Run executes body with a fresh App, translating Exit/Fail/Errorf aborts
// into the returned process exit code (0 when body returns normally).
func Run(name, usage string, stdout, stderr io.Writer, body func(a *App)) (code int) {
	defer func() {
		if r := recover(); r != nil {
			c, ok := r.(exitCode)
			if !ok {
				panic(r)
			}
			code = int(c)
		}
	}()
	body(&App{Name: name, Usage: usage, Stdout: stdout, Stderr: stderr})
	return 0
}

// Exit aborts the command with the given exit code.
func Exit(code int) {
	panic(exitCode(code))
}

// Fail reports a usage error — the message followed by the usage text —
// and exits 2.
func (a *App) Fail(format string, args ...any) {
	fmt.Fprintf(a.Stderr, a.Name+": "+format+"\n", args...)
	if a.Usage != "" {
		fmt.Fprint(a.Stderr, "\n"+a.Usage)
	}
	Exit(2)
}

// Errorf reports a runtime error and exits 1.
func (a *App) Errorf(format string, args ...any) {
	fmt.Fprintf(a.Stderr, a.Name+": "+format+"\n", args...)
	Exit(1)
}
