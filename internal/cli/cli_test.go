package cli

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunExitProtocol(t *testing.T) {
	var out, errOut bytes.Buffer
	code := Run("tool", "usage text\n", &out, &errOut, func(a *App) {})
	if code != 0 {
		t.Fatalf("normal return: exit %d", code)
	}

	code = Run("tool", "usage text\n", &out, &errOut, func(a *App) {
		a.Fail("bad flag %d", 7)
	})
	if code != 2 {
		t.Fatalf("Fail: exit %d, want 2", code)
	}
	if s := errOut.String(); !strings.Contains(s, "tool: bad flag 7") || !strings.Contains(s, "usage text") {
		t.Fatalf("Fail output: %q", s)
	}

	errOut.Reset()
	code = Run("tool", "usage text\n", &out, &errOut, func(a *App) {
		a.Errorf("broke: %v", "io")
	})
	if code != 1 {
		t.Fatalf("Errorf: exit %d, want 1", code)
	}
	if s := errOut.String(); !strings.Contains(s, "tool: broke: io") || strings.Contains(s, "usage text") {
		t.Fatalf("Errorf output: %q", s)
	}

	code = Run("tool", "", &out, &errOut, func(a *App) { Exit(3) })
	if code != 3 {
		t.Fatalf("Exit: exit %d, want 3", code)
	}
}

func TestRunRepanicsForeignPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("foreign panic must propagate")
		}
	}()
	Run("tool", "", &bytes.Buffer{}, &bytes.Buffer{}, func(a *App) {
		panic("unexpected")
	})
}
