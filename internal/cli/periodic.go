package cli

import (
	"context"
	"time"
)

// Periodically runs fn every interval on a background goroutine until ctx
// is cancelled. A non-positive interval disables it entirely — the
// convention long-running commands use for their "-log-every 0" flags.
// The first call happens one full interval in, not immediately: the
// command's own startup line already covers time zero.
func Periodically(ctx context.Context, every time.Duration, fn func()) {
	if every <= 0 {
		return
	}
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				fn()
			}
		}
	}()
}
