// Package ncg is a from-scratch Go implementation of the network creation
// game dynamics studied by Kawald & Lenzner, "On Dynamics in Selfish
// Network Creation" (SPAA 2013): the Swap Game, Asymmetric Swap Game,
// Greedy Buy Game, Buy Game and bilateral equal-split Buy Game, played as
// sequential-move processes under configurable move policies, together
// with the paper's best-response-cycle constructions, non-weak-acyclicity
// analyses and empirical convergence-time study.
//
// The facade re-exports the core types of the internal packages so
// downstream users can build and run processes without importing
// internals:
//
//	g := ncg.Path(9)
//	res := ncg.Run(g, ncg.ProcessConfig{
//		Game:   ncg.NewMaxSwapGame(),
//		Policy: ncg.MaxCostPolicy(),
//	})
//	fmt.Println(res.Steps, res.Converged)
//
// See the examples directory for richer scenarios and the cmd directory
// for the figure-regeneration tools.
package ncg

import (
	"ncg/internal/campaign"
	"ncg/internal/coord"
	"ncg/internal/cycles"
	"ncg/internal/dynamics"
	"ncg/internal/ensemble"
	"ncg/internal/experiments"
	"ncg/internal/faultinject"
	"ncg/internal/game"
	"ncg/internal/gen"
	"ncg/internal/graph"
	"ncg/internal/hunt"
	"ncg/internal/jsonl"
	"ncg/internal/quality"
	"ncg/internal/search"
)

// Core graph types.
type (
	// Graph is an undirected network with an edge-ownership function.
	Graph = graph.Graph
	// Edge is an owned edge (U owns it).
	Edge = graph.Edge
	// Rand is the deterministic random source the generators consume.
	Rand = gen.Rand
)

// Graph constructors.
var (
	NewGraph      = graph.New
	FromEdges     = graph.FromEdges
	Path          = graph.Path
	Cycle         = graph.Cycle
	Star          = graph.Star
	DoubleStar    = graph.DoubleStar
	Complete      = graph.Complete
	CompleteMinus = graph.CompleteMinus
	Isomorphic    = graph.Isomorphic
)

// Game types and cost model.
type (
	// Game is a network creation game variant.
	Game = game.Game
	// Alpha is the exact rational edge price.
	Alpha = game.Alpha
	// Cost is an agent's exact cost.
	Cost = game.Cost
	// Move is a strategy change of one agent.
	Move = game.Move
	// DistKind selects SUM or MAX distance cost.
	DistKind = game.DistKind
)

// Distance-cost kinds.
const (
	SUM = game.Sum
	MAX = game.Max
)

// Edge price constructors.
var (
	NewAlpha = game.NewAlpha
	AlphaInt = game.AlphaInt
)

// Move helpers. Moves returned by a game's BestMoves/ImprovingMoves share
// scratch-pooled backing arrays and are valid only until the next
// enumeration on the same scratch; CloneMoves deep-copies a batch a caller
// wants to retain. NaiveGame wraps a game so its scans run the full-BFS
// reference path (for benchmarks and equivalence testing against the
// delta-evaluated engine).
var (
	CloneMoves = game.CloneMoves
	NaiveGame  = game.Naive
)

// NewSumSwapGame returns the SUM Swap Game of Alon et al.
func NewSumSwapGame() Game { return game.NewSwap(game.Sum) }

// NewMaxSwapGame returns the MAX Swap Game.
func NewMaxSwapGame() Game { return game.NewSwap(game.Max) }

// NewAsymSwapGame returns the Asymmetric Swap Game (owner-only swaps).
func NewAsymSwapGame(kind DistKind) Game { return game.NewAsymSwap(kind) }

// NewGreedyBuyGame returns the Greedy Buy Game (buy/delete/swap one edge).
func NewGreedyBuyGame(kind DistKind, alpha Alpha) Game {
	return game.NewGreedyBuy(kind, alpha)
}

// NewBuyGame returns the original Fabrikant et al. Buy Game; best responses
// are computed exhaustively (intended for small n).
func NewBuyGame(kind DistKind, alpha Alpha) Game { return game.NewBuy(kind, alpha) }

// NewBilateralGame returns the Corbo-Parkes bilateral equal-split Buy Game.
func NewBilateralGame(kind DistKind, alpha Alpha) Game {
	return game.NewBilateral(kind, alpha)
}

// Process types.
type (
	// ProcessConfig parameterizes a sequential-move process.
	ProcessConfig = dynamics.Config
	// ProcessResult summarizes a finished process.
	ProcessResult = dynamics.Result
	// Policy selects the moving agent each step.
	Policy = dynamics.Policy
)

// Run executes a network creation process on g (mutating it) and returns
// the summary.
func Run(g *Graph, cfg ProcessConfig) ProcessResult { return dynamics.Run(g, cfg) }

// Activation schedules: ProcessConfig.Schedule selects who moves when. The
// default (nil, or SequentialSchedule) is the paper's one-unhappy-agent-
// per-step process; RoundSchedule plays simultaneous-move rounds where
// every activated agent best-responds against the same pre-round snapshot
// and the responses commit together under a collision policy.
type (
	// Scheduler is the sealed move-activation regime interface.
	Scheduler = dynamics.Scheduler
	// SequentialSchedule is the classical one-agent-per-step schedule.
	SequentialSchedule = dynamics.Sequential
	// RoundSchedule is the simultaneous-move round schedule.
	RoundSchedule = dynamics.Rounds
	// RoundActiveSet selects which agents a round activates.
	RoundActiveSet = dynamics.ActiveSet
	// RoundCollision resolves same-round moves touching a common edge slot.
	RoundCollision = dynamics.Collision
)

// Round activation sets and collision policies.
const (
	ActiveAll       = dynamics.ActiveAll
	ActiveShuffled  = dynamics.ActiveShuffled
	ActivePolicy    = dynamics.ActivePolicy
	FirstWriterWins = dynamics.FirstWriterWins
	SkipOnConflict  = dynamics.SkipOnConflict
	RejectRound     = dynamics.RejectRound
)

var (
	// ScheduleNames lists the registry names accepted by ScheduleByName.
	ScheduleNames = dynamics.ScheduleNames
	// ScheduleByName resolves a registry name to its schedule.
	ScheduleByName = dynamics.ScheduleByName
)

// Distance oracles. ProcessConfig.Oracle selects the distance backend of a
// run: the exact all-pairs cache, or a k-landmark oracle whose bound-based
// candidate filter re-scores surviving moves exactly — trajectories stay
// bit-identical to exact mode at O(kn) oracle memory.
type (
	// OracleSpec selects a run's distance oracle; the zero value is auto.
	OracleSpec = dynamics.OracleSpec
	// OracleMode enumerates the oracle selection modes.
	OracleMode = dynamics.OracleMode
)

// Oracle modes.
const (
	OracleAuto     = dynamics.OracleAuto
	OracleExact    = dynamics.OracleExact
	OracleLandmark = dynamics.OracleLandmark
)

// ParseOracleSpec parses the -oracle flag syntax: "auto" (or empty),
// "exact", "landmark", or "landmark:k".
var ParseOracleSpec = dynamics.ParseOracleSpec

// ProcessRunner executes processes back to back while reusing every heavy
// allocation (engine scratches, the all-pairs distance cache, move
// buffers) across runs; results are identical to Run. Use one per worker
// when sweeping many trials — it is not safe for concurrent use.
type ProcessRunner = dynamics.Runner

// NewProcessRunner returns an empty ProcessRunner; arenas grow on first
// use.
func NewProcessRunner() *ProcessRunner { return dynamics.NewRunner() }

// Stable reports whether g is a pure Nash equilibrium of gm.
func Stable(g *Graph, gm Game) bool { return dynamics.Stable(g, gm) }

// MaxCostPolicy returns the max cost policy of Section 3.4.1.
func MaxCostPolicy() Policy { return dynamics.MaxCost{} }

// RandomPolicy returns the random policy of Section 3.4.1.
func RandomPolicy() Policy { return dynamics.Random{} }

// MaxCostDeterministicPolicy returns the max cost policy with
// smallest-index tie-breaking, the rule of the Theorem 2.11 trace and
// Figure 1.
func MaxCostDeterministicPolicy() Policy { return dynamics.MaxCostDeterministic{} }

// Tie-breaking rules among best moves.
const (
	TieRandom = dynamics.TieRandom
	TieFirst  = dynamics.TieFirst
)

// Generators of the paper's initial-network ensembles.
var (
	// BudgetNetwork builds the Section 3.4.1 bounded-budget ensemble.
	BudgetNetwork = gen.BudgetNetwork
	// RandomConnected builds the Section 4.2.1 m-edge ensemble.
	RandomConnected = gen.RandomConnected
	// RandomTree builds a uniform labeled tree with random ownership.
	RandomTree = gen.RandomTree
	// SparseNetwork builds a connected n-vertex network with extra
	// non-tree edges in O(n + extra) expected time — the large-n
	// counterpart of RandomConnected for landmark-oracle runs.
	// Infeasible parameters return a typed *gen.InfeasibleError.
	SparseNetwork = gen.SparseNetwork
	// SparseCSR is SparseNetwork built directly into the CSR backend,
	// with no dense intermediate — the constructor for networks whose
	// O(n²/8) adjacency matrix does not fit in memory.
	SparseCSR = gen.SparseCSR
	// SparseEdges returns the edge list the sparse builders load.
	SparseEdges = gen.SparseEdges
	// NewRand builds the deterministic random source the generators use.
	NewRand = gen.NewRand
)

// Cycle analysis. Explorations run on an interned state store: every
// distinct network is kept once as a compact canonical encoding, states
// are recognized by an incrementally maintained Zobrist fingerprint with
// byte-exact collision verification, and the frontier expands level by
// level over a worker pool — results are identical at any worker count.
type (
	// CycleInstance is a verified better/best-response cycle.
	CycleInstance = cycles.Instance
	// ReachResult summarizes an exhaustive improving-move exploration.
	ReachResult = cycles.ReachResult
	// ExploreOptions parameterizes Explore (cap, move mode, workers,
	// progress callback).
	ExploreOptions = cycles.ExploreOptions
	// ExploreProgress is the per-level report of a running exploration.
	ExploreProgress = cycles.ExploreProgress
)

var (
	// Explore runs a reachability analysis with explicit options — the
	// parallel form of ExploreImproving/ExploreBestResponse.
	Explore = cycles.Explore
	// ExploreImproving exhaustively explores the improving-move state
	// space (non-weak-acyclicity checks).
	ExploreImproving = cycles.ExploreImproving
	// ExploreBestResponse restricts the exploration to best responses.
	ExploreBestResponse = cycles.ExploreBestResponse
	// FindBestResponseCycle searches the best-response state graph for a
	// directed cycle.
	FindBestResponseCycle = cycles.FindBestResponseCycle
	// SearchBestResponseCycle is FindBestResponseCycle reporting also the
	// number of distinct states searched.
	SearchBestResponseCycle = cycles.SearchBestResponseCycle
	// SearchRoundCycle plays one round-schedule trajectory (the config
	// must carry a RoundSchedule) and returns the cycle it closes, if any,
	// with the number of committed moves.
	SearchRoundCycle = cycles.SearchRoundCycle
)

// PaperCycles returns the verified cycle constructions of the paper, keyed
// by figure.
func PaperCycles() []CycleInstance {
	return []CycleInstance{
		cycles.Fig2MaxSG(),
		cycles.Fig3SumASG(),
		cycles.Fig9SumGBG(),
		cycles.Fig9SumBG(),
		cycles.Fig10MaxGBG(),
		cycles.Fig10MaxBG(),
		cycles.Fig15SumBilateral(),
		cycles.Fig16MaxBilateral(),
	}
}

// Ensemble execution spine: named scenarios (game x alpha schedule x
// policy x tie-break x initial-network ensemble) run as sharded,
// deterministic trial ensembles streaming per-trial records to sinks.
type (
	// Scenario is a named, registrable workload.
	Scenario = ensemble.Scenario
	// ScenarioFamily identifies one of the five game variants.
	ScenarioFamily = ensemble.Family
	// PolicyKind selects a move policy by name.
	PolicyKind = ensemble.PolicyKind
	// EnsembleOptions override scenario defaults and shape execution
	// (grid, trials, seed, workers, shard size, resume checkpoint).
	EnsembleOptions = ensemble.Options
	// EnsembleRecord is the result of one trial, the JSONL record unit.
	EnsembleRecord = ensemble.Record
	// EnsembleSummary aggregates an ensemble run per agent count.
	EnsembleSummary = ensemble.Summary
	// EnsembleAggregate summarizes the trials of one agent count.
	EnsembleAggregate = ensemble.Aggregate
	// RecordSink consumes the per-trial records of an ensemble run.
	RecordSink = ensemble.Sink
	// FuncRecordSink adapts a callback into a RecordSink.
	FuncRecordSink = ensemble.FuncSink
	// Checkpoint holds trials recovered from a partial JSONL file.
	Checkpoint = ensemble.Checkpoint
)

// Policy kinds.
const (
	PolicyMaxCost              = ensemble.MaxCost
	PolicyRandom               = ensemble.Random
	PolicyMaxCostDeterministic = ensemble.MaxCostDeterministic
	PolicyMinIndex             = ensemble.MinIndex
)

var (
	// RegisterScenario adds a scenario to the registry.
	RegisterScenario = ensemble.Register
	// LookupScenario returns a registered scenario by name.
	LookupScenario = ensemble.Lookup
	// Scenarios lists every registered scenario sorted by name.
	Scenarios = ensemble.List
	// RunScenario executes a scenario's trial ensemble over a sharded
	// worker pool, streaming records to the sinks; results are
	// bit-identical at any worker count and shard size.
	RunScenario = ensemble.Execute
	// NewJSONLSink streams records as JSON lines.
	NewJSONLSink = ensemble.NewJSONLSink
	// NewCSVSink streams records as CSV.
	NewCSVSink = ensemble.NewCSVSink
	// LoadCheckpoint parses a (possibly truncated) JSONL record file.
	LoadCheckpoint = ensemble.LoadCheckpoint
	// ResumeJSONL prepares a partial JSONL file for resumption.
	ResumeJSONL = ensemble.ResumeJSONL
)

// Counterexample-hunt campaigns: grids of instance samplers x game
// variants searched for best-response cycles over a sharded worker pool,
// streaming JSONL records (hits carry the canonical start-network encoding
// and the cycle trace) with checkpoint/resume. Results are bit-identical
// at any worker count.
type (
	// Campaign is one named counterexample hunt (samplers x variants grid,
	// instance budget, per-instance state cap).
	Campaign = campaign.Campaign
	// CampaignSampler draws the start networks of one grid axis.
	CampaignSampler = campaign.Sampler
	// CampaignVariant names one game the campaign plays per instance.
	CampaignVariant = campaign.Variant
	// CampaignOptions override campaign defaults and shape execution
	// (budget, seed, cap, max hits, workers, shard size, resume).
	CampaignOptions = campaign.Options
	// CampaignRecord is the result of searching one instance, the JSONL
	// record unit.
	CampaignRecord = campaign.Record
	// CampaignSummary aggregates a campaign run per grid cell.
	CampaignSummary = campaign.Summary
	// CampaignProgress is the per-shard report of a running campaign.
	CampaignProgress = campaign.Progress
	// CampaignSink consumes the per-instance records of a campaign run.
	CampaignSink = campaign.Sink
	// FuncCampaignSink adapts a callback into a CampaignSink.
	FuncCampaignSink = campaign.FuncSink
	// CampaignCheckpoint holds instances recovered from a partial JSONL
	// record file.
	CampaignCheckpoint = campaign.Checkpoint
	// CandidateFamily is an indexed deterministic candidate family (a
	// figure sweep of the reconstruction searches) runnable on the
	// campaign spine via SweepCandidateFamily.
	CandidateFamily = search.Family
	// HuntResult is a best-response cycle found on a unit-budget network.
	HuntResult = hunt.HuntResult
)

var (
	// RunCampaign executes a campaign's grid over a sharded worker pool,
	// streaming records to the sinks.
	RunCampaign = campaign.Run
	// CampaignSamplers lists the built-in instance samplers.
	CampaignSamplers = campaign.BuiltinSamplers
	// CampaignVariants lists the built-in SUM/MAX x SG/ASG/GBG/BG grid.
	CampaignVariants = campaign.BuiltinVariants
	// CampaignSamplerByName / CampaignVariantByName resolve grid axes.
	CampaignSamplerByName = campaign.SamplerByName
	CampaignVariantByName = campaign.VariantByName
	// NewCampaignJSONLSink streams campaign records as JSON lines.
	NewCampaignJSONLSink = campaign.NewJSONLSink
	// CreateCampaignJSONL creates (or truncates) a campaign record file.
	CreateCampaignJSONL = campaign.CreateJSONL
	// LoadCampaignCheckpoint parses a (possibly truncated) campaign JSONL
	// record file.
	LoadCampaignCheckpoint = campaign.LoadCheckpoint
	// ResumeCampaignJSONL prepares a partial campaign file for resumption.
	ResumeCampaignJSONL = campaign.ResumeJSONL
	// SweepCandidateFamily runs a figure candidate sweep on the campaign
	// spine; survivors in index order equal the sequential search's list.
	SweepCandidateFamily = campaign.SweepFamily
	// Fig5Family / Fig6MinimalFamily / Fig10Family are the Theorem 3.7 and
	// Figure 10 candidate sweeps as indexed families.
	Fig5Family        = search.Fig5Family
	Fig6MinimalFamily = search.Fig6MinimalFamily
	Fig10Family       = search.Fig10Family
	// HuntUnitBudgetCycle hunts the structured cycle-pendant unit-budget
	// family for a best-response cycle, reporting how many instances were
	// actually searched.
	HuntUnitBudgetCycle = hunt.HuntUnitBudgetCycle
)

// Fault-tolerant campaign service: a lease-based coordinator decomposes a
// campaign into (sampler, variant, instance-range) shards, leases them to
// worker processes over plain HTTP+JSON, re-leases expired shards, and
// merges the completed shard files into the exact byte stream a
// single-process RunCampaign would have written. Shards are idempotent
// (records are keyed by (sampler, variant, instance), never by
// scheduling), every durable write is atomic or append-fsync with
// truncated-tail recovery, and the coordinator resumes from its manifest
// after a crash. See cmd/ncghunt serve/work for the CLI form.
type (
	// Coordinator owns one campaign's shard ledger and merge.
	Coordinator = coord.Coordinator
	// CoordinatorConfig parameterizes OpenCoordinator (dir, campaign,
	// shard size, lease TTL, fault injector).
	CoordinatorConfig = coord.Config
	// CoordinatorStatus is a point-in-time progress snapshot.
	CoordinatorStatus = coord.Status
	// CampaignWorkerConfig parameterizes RunCampaignWorker (coordinator
	// URL, campaign, retry/backoff, worker name).
	CampaignWorkerConfig = coord.WorkerConfig
	// CampaignWorkerStats summarizes one worker's run.
	CampaignWorkerStats = coord.WorkerStats
	// CampaignRegistry hosts many campaigns in one process under
	// campaign-scoped routes (/c/<name>/v1/...) with crash isolation,
	// /healthz and /readyz, and optional supervised auto-restart.
	CampaignRegistry = coord.Registry
	// CampaignRegistryConfig parameterizes NewCampaignRegistry (root state
	// directory, auto-restart delay, Retry-After hint).
	CampaignRegistryConfig = coord.RegistryConfig
	// CampaignInfo is one row of the registry's GET /v1/campaigns.
	CampaignInfo = coord.CampaignInfo
	// CampaignWatchConfig parameterizes RunCampaignWatch (coordinator URL,
	// resume cursor, chunk handler, retry/backoff budgets).
	CampaignWatchConfig = coord.WatchConfig
	// CampaignWatchStats summarizes one watch: acked bytes, polls,
	// reconnects and the final resume cursor.
	CampaignWatchStats = coord.WatchStats
	// FaultInjector is the deterministic fault seam of the service; nil
	// is the production no-op. Schedules are pure functions of a seed, so
	// chaos runs are exactly reproducible.
	FaultInjector = faultinject.Injector
	// FaultSchedule maps injection points to scheduled fault kinds.
	FaultSchedule = faultinject.Schedule
	// FaultPoint names one fault site of the service.
	FaultPoint = faultinject.Point
	// FaultKind is the fault fired at a point (FaultNone proceeds).
	FaultKind = faultinject.Kind
)

// Fault sites of the campaign service.
const (
	FaultPointShardWrite     = faultinject.ShardWrite
	FaultPointManifestAppend = faultinject.ManifestAppend
	FaultPointLeaseGrant     = faultinject.LeaseGrant
	FaultPointHeartbeat      = faultinject.Heartbeat
	FaultPointWorkerInstance = faultinject.WorkerInstance
	FaultPointStreamChunk    = faultinject.StreamChunk
	FaultPointStreamClient   = faultinject.StreamClient
)

// Fault kinds.
const (
	FaultNone      = faultinject.None
	FaultCrash     = faultinject.Crash
	FaultTorn      = faultinject.Torn
	FaultDrop      = faultinject.Drop
	FaultStall     = faultinject.Stall
	FaultDuplicate = faultinject.Duplicate
)

// ErrInjectedCrash is the error a worker returns when its fault schedule
// fires a crash point; chaos harnesses match it to tell injected deaths
// from real failures.
var ErrInjectedCrash = coord.ErrInjectedCrash

var (
	// OpenCoordinator creates or resumes a coordinator in a state
	// directory; serve its Handler() over HTTP and watch Done().
	OpenCoordinator = coord.Open
	// RunCampaignWorker leases, executes and completes shards until the
	// campaign is done or the context is cancelled.
	RunCampaignWorker = coord.RunWorker
	// RunCampaignWatch follows a coordinator's live result stream
	// (GET /v1/stream) with cursor-exact resume across disconnects and
	// coordinator restarts; the chunks it delivers, concatenated, are
	// always a byte-prefix of the campaign's canonical records.jsonl.
	RunCampaignWatch = coord.RunWatch
	// NewCampaignRegistry builds an empty multi-campaign registry; Add
	// campaigns and serve its Handler() over HTTP.
	NewCampaignRegistry = coord.NewRegistry
	// NewFaultInjector builds an injector from a schedule.
	NewFaultInjector = faultinject.New
	// SeededFaultSchedule derives a reproducible chaos schedule from a
	// seed (horizon bounds occurrences so runs converge).
	SeededFaultSchedule = faultinject.Seeded
	// AtomicWriteFile writes a file via temp+fsync+rename so crashes
	// leave either the old or the new content, never a torn mix.
	AtomicWriteFile = jsonl.AtomicWriteFile
)

// Experiment harness (the paper's empirical figures, running on the
// ensemble spine).
type (
	// ExperimentOptions scale a figure regeneration.
	ExperimentOptions = experiments.Options
	// FigureResult is a regenerated empirical figure.
	FigureResult = experiments.FigureResult
)

var (
	// RegenerateFigure regenerates one of the empirical figures (7, 8,
	// 11-14).
	RegenerateFigure = experiments.Figure
	// DefaultExperimentOptions returns the scaled-down defaults.
	DefaultExperimentOptions = experiments.DefaultOptions
)

// Equilibrium quality (price-of-anarchy style measurements).
type (
	// QualityReport compares a network's social cost to the social
	// optimum of its game.
	QualityReport = quality.Report
	// PhaseProfile is the move-kind mix of a trajectory in thirds.
	PhaseProfile = experiments.PhaseProfile
)

var (
	// EvaluateQuality measures a (stable) network against the SUM Buy
	// Game social optimum.
	EvaluateQuality = quality.Evaluate
	// SumBGOptimum returns the social optimum network and cost.
	SumBGOptimum = quality.SumBGOptimum
	// ProfilePhases segments a trajectory of move kinds into thirds
	// (Section 4.2.2 phase analysis).
	ProfilePhases = experiments.Profile
)
