package ncg

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestFacadeQuickstart exercises the public API end to end.
func TestFacadeQuickstart(t *testing.T) {
	g := Path(9)
	res := Run(g, ProcessConfig{Game: NewMaxSwapGame(), Policy: MaxCostPolicy(), Seed: 1})
	if !res.Converged {
		t.Fatal("quickstart did not converge")
	}
	if !Stable(g, NewMaxSwapGame()) {
		t.Fatal("result not stable")
	}
	if !g.IsStar() && !g.IsDoubleStar() {
		t.Fatal("stable MAX-SG tree must be a star or double star")
	}
}

func TestFacadeGames(t *testing.T) {
	games := []Game{
		NewSumSwapGame(), NewMaxSwapGame(),
		NewAsymSwapGame(SUM), NewAsymSwapGame(MAX),
		NewGreedyBuyGame(SUM, NewAlpha(3, 2)),
		NewBuyGame(MAX, AlphaInt(2)),
		NewBilateralGame(SUM, AlphaInt(4)),
	}
	names := map[string]bool{}
	for _, gm := range games {
		if names[gm.Name()] {
			t.Fatalf("duplicate game name %q", gm.Name())
		}
		names[gm.Name()] = true
	}
}

func TestFacadePaperCycles(t *testing.T) {
	insts := PaperCycles()
	if len(insts) < 8 {
		t.Fatalf("expected at least 8 verified constructions, got %d", len(insts))
	}
	for _, inst := range insts {
		if err := inst.Verify(); err != nil {
			t.Fatalf("%s: %v", inst.Name, err)
		}
	}
}

func TestFacadeGenerators(t *testing.T) {
	r := NewRand(3)
	g := BudgetNetwork(20, 2, r)
	if g.M() != 40 || !g.Connected() {
		t.Fatal("budget network malformed")
	}
	h := RandomConnected(15, 30, r)
	if h.M() != 30 || !h.Connected() {
		t.Fatal("random connected malformed")
	}
	tr := RandomTree(12, r)
	if !tr.IsTree() {
		t.Fatal("random tree malformed")
	}
}

func TestFacadeExperiment(t *testing.T) {
	opt := ExperimentOptions{Ns: []int{10}, Trials: 4, Seed: 1}
	fr, err := RegenerateFigure(7, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Series) == 0 {
		t.Fatal("no series")
	}
}

func TestFacadeExploration(t *testing.T) {
	insts := PaperCycles()
	var fig16 CycleInstance
	for _, in := range insts {
		if in.Name == "Fig16 MAX-bilateral" {
			fig16 = in
		}
	}
	fc := FindBestResponseCycle(fig16.Start(), fig16.Game, 2000)
	if fc == nil {
		t.Fatal("Fig 16 must admit a reachable best-response cycle")
	}
	res, err := ExploreBestResponse(fig16.Start(), fig16.Game, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if res.States < 2 {
		t.Fatalf("exploration too small: %+v", res)
	}
	// The parallel explorer with options yields the identical result.
	var levels int
	pres, err := Explore(fig16.Start(), fig16.Game, ExploreOptions{
		MaxStates:    5000,
		BestResponse: true,
		Workers:      3,
		Progress:     func(ExploreProgress) { levels++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if pres != res || levels == 0 {
		t.Fatalf("parallel exploration diverged: %+v vs %+v (%d levels)", pres, res, levels)
	}
}

func TestFacadeEnsemble(t *testing.T) {
	scs := Scenarios()
	if len(scs) < 12 {
		t.Fatalf("registry exposes %d scenarios, want >= 12", len(scs))
	}
	sc, ok := LookupScenario("fig7-asg-sum-k2")
	if !ok {
		t.Fatal("figure scenario missing from facade registry")
	}
	var buf bytes.Buffer
	var recs int
	sum, err := RunScenario(sc, EnsembleOptions{Ns: []int{10}, Trials: 4, Workers: 2},
		NewJSONLSink(&buf), FuncRecordSink(func(EnsembleRecord) error { recs++; return nil }))
	if err != nil {
		t.Fatal(err)
	}
	if recs != 4 || sum.Aggregates[0].Trials != 4 {
		t.Fatalf("facade run malformed: %d records, %+v", recs, sum)
	}
	if !strings.Contains(buf.String(), `"scenario":"fig7-asg-sum-k2"`) {
		t.Fatalf("JSONL missing scenario field:\n%s", buf.String())
	}
}

func TestFacadeDeterministicPolicy(t *testing.T) {
	g := Path(16)
	res := Run(g, ProcessConfig{
		Game:   NewMaxSwapGame(),
		Policy: MaxCostDeterministicPolicy(),
		Tie:    TieFirst,
	})
	if !res.Converged {
		t.Fatal("deterministic max cost run did not converge")
	}
	if PolicyMaxCostDeterministic.Policy().Name() != MaxCostDeterministicPolicy().Name() {
		t.Fatal("policy kind and constructor disagree")
	}
}

// TestFacadeCampaign exercises the counterexample-hunt exports end to end:
// a small campaign over built-in samplers and variants, streamed to a
// JSONL sink, plus the campaign-backed unit-budget hunt.
func TestFacadeCampaign(t *testing.T) {
	tree, ok := CampaignSamplerByName("random-tree")
	if !ok {
		t.Fatal("random-tree sampler missing")
	}
	sumASG, ok := CampaignVariantByName("sum-asg")
	if !ok {
		t.Fatal("sum-asg variant missing")
	}
	var buf bytes.Buffer
	sum, err := RunCampaign(Campaign{
		Name:      "facade-hunt",
		Samplers:  []CampaignSampler{tree},
		Variants:  []CampaignVariant{sumASG},
		N:         6,
		Instances: 3,
		Seed:      1,
		MaxStates: 100,
	}, CampaignOptions{Workers: 2}, NewCampaignJSONLSink(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Searched != 3 || sum.Instances != 3 {
		t.Fatalf("summary %+v", sum)
	}
	if got := strings.Count(buf.String(), "\n"); got != 3 {
		t.Fatalf("JSONL lines = %d, want 3", got)
	}
	if len(CampaignSamplers()) < 5 || len(CampaignVariants()) != 8 {
		t.Fatalf("builtin grid: %d samplers, %d variants",
			len(CampaignSamplers()), len(CampaignVariants()))
	}
	res, searched := HuntUnitBudgetCycle(SUM, 1, 2, 100)
	if searched != 2 {
		t.Fatalf("hunt searched %d instances, want 2", searched)
	}
	if res != nil {
		t.Logf("hunt found a cycle at instance %d", res.Instance)
	}
	if f := Fig10Family(); f.Total != 262144 {
		t.Fatalf("Fig10 family total = %d", f.Total)
	}
}

// TestFacadeCampaignService runs the lease-based coordinator end to end
// through the facade: open, serve, one worker, merged stream byte-identical
// to the single-process run.
func TestFacadeCampaignService(t *testing.T) {
	tree, ok := CampaignSamplerByName("random-tree")
	if !ok {
		t.Fatal("random-tree sampler missing")
	}
	sumSG, ok := CampaignVariantByName("sum-sg")
	if !ok {
		t.Fatal("sum-sg variant missing")
	}
	c := Campaign{
		Name:      "facade-service",
		Samplers:  []CampaignSampler{tree},
		Variants:  []CampaignVariant{sumSG},
		N:         8,
		Instances: 6,
		Seed:      3,
		MaxStates: 200,
	}
	var want bytes.Buffer
	if _, err := RunCampaign(c, CampaignOptions{}, NewCampaignJSONLSink(&want)); err != nil {
		t.Fatal(err)
	}

	co, err := OpenCoordinator(CoordinatorConfig{Campaign: c, Dir: t.TempDir(), ShardSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()
	stats, err := RunCampaignWorker(context.Background(), CampaignWorkerConfig{URL: srv.URL, Campaign: c})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Shards == 0 {
		t.Fatalf("worker completed no shards: %+v", stats)
	}
	select {
	case <-co.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("campaign never merged; status %+v", co.Status())
	}
	got, err := os.ReadFile(co.ResultPath())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("merged stream differs from single-process run (%d vs %d bytes)", len(got), len(want.Bytes()))
	}
}

// TestFacadeAtomicWriteFile smoke-tests the crash-safe checkpoint writer.
func TestFacadeAtomicWriteFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	for _, content := range []string{"one", "two"} {
		if err := AtomicWriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "two" {
		t.Fatalf("read %q, want %q", data, "two")
	}
}
